(** In-place patching of SSP sites to P-SSP (§V-C).

    Both challenges of §V-C are enforced mechanically:
    - stack layout preservation: the canary slot stays one word, holding
      the packed 2×32-bit pair (entropy downgrade acknowledged in the
      paper's caveat);
    - address layout preservation: every replacement instruction is
      asserted byte-length-equal to the instruction it overwrites, so no
      offset in the binary moves. *)

exception Patch_error of string

val patch_prologue : Os.Image.t -> Scan.prologue_site -> unit
(** [mov %fs:0x28,%rax] → [mov %fs:0x2a8,%rax] — only the TLS offset
    changes (Code 5). *)

val patch_epilogue : ?check_target:int64 -> Os.Image.t -> Scan.epilogue_site -> unit
(** Rewrite the Code 2 check into the instrumented form: the canary word
    is loaded into rdi and the XOR is replaced by a call into the
    combined check-and-fail routine (which sets ZF on success), keeping
    the original [je]/[call] — byte-for-byte the same length as the SSP
    epilogue. [check_target] defaults to the epilogue's original fail
    target (whose implementation is replaced by preload override or
    static hook). *)

val write_code_at : Os.Image.t -> int64 -> Isa.Insn.t list -> unit
(** Overwrite instructions at an absolute text address; asserts the
    encoding fits exactly the span of what it replaces is the caller's
    responsibility. Raises {!Patch_error} if outside the text section. *)
