type report = {
  prologues_patched : int;
  epilogues_patched : int;
  stubs_hooked : int;
  bytes_added : int;
  original_size : int;
}

let pp_report fmt r =
  Format.fprintf fmt
    "patched %d prologue(s), %d epilogue(s); hooked %d stub(s); +%d bytes (%.2f%%)"
    r.prologues_patched r.epilogues_patched r.stubs_hooked r.bytes_added
    (100.0 *. float_of_int r.bytes_added /. float_of_int r.original_size)

let retag (image : Os.Image.t) tag = { image with Os.Image.scheme_tag = tag }

let instrument (original : Os.Image.t) =
  let image = Os.Image.clone original in
  let original_size = Os.Image.code_size image in
  let sites = Scan.scan image in
  List.iter (Patch.patch_prologue image) sites.Scan.prologues;
  let stubs_hooked = ref 0 in
  let image, tag =
    match image.Os.Image.linkage with
    | Os.Image.Dynamic ->
      (* The check routine is the (preload-overridden) __stack_chk_fail
         the epilogue already targets. *)
      List.iter (Patch.patch_epilogue image) sites.Scan.epilogues;
      (image, "pssp-instr")
    | Os.Image.Static ->
      let added = Static_link.append_section image in
      List.iter
        (Patch.patch_epilogue ~check_target:added.Static_link.check_addr image)
        sites.Scan.epilogues;
      List.iter
        (fun (stub, target) ->
          if Static_link.hook_stub image ~stub ~target then incr stubs_hooked)
        [
          ("__stack_chk_fail", added.Static_link.check_addr);
          ("fork", added.Static_link.fork_addr);
          ("pthread_create", added.Static_link.pthread_addr);
        ];
      (image, "pssp-instr-static")
  in
  let image = retag image tag in
  ( image,
    {
      prologues_patched = List.length sites.Scan.prologues;
      epilogues_patched = List.length sites.Scan.epilogues;
      stubs_hooked = !stubs_hooked;
      bytes_added = Os.Image.code_size image - original_size;
      original_size;
    } )

let required_preload (image : Os.Image.t) =
  match image.Os.Image.scheme_tag with
  | "pssp-instr" -> Os.Preload.Pssp_packed
  | "pssp-instr-static" -> Os.Preload.No_preload
  | "pssp" -> Os.Preload.Pssp_wide
  | "raf-ssp" -> Os.Preload.Raf
  | "dynaguard" -> Os.Preload.Dynaguard_fix
  | "dcr" -> Os.Preload.Dcr_fix
  | _ -> Os.Preload.No_preload
