open Isa

exception Patch_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Patch_error s)) fmt

let text_offset (image : Os.Image.t) addr =
  let off = Int64.sub addr image.Os.Image.text_base in
  if
    Int64.compare off 0L < 0
    || Int64.compare off (Int64.of_int (Bytes.length image.Os.Image.text)) >= 0
  then fail "address 0x%Lx outside text section" addr;
  Int64.to_int off

let write_code_at image addr insns =
  let off = text_offset image addr in
  let code = Encode.list_to_bytes insns in
  Bytes.blit code 0 image.Os.Image.text off (Bytes.length code)

let replace_same_length image addr ~old_len insns =
  let code = Encode.list_to_bytes insns in
  if Bytes.length code <> old_len then
    fail "replacement at 0x%Lx is %d bytes, original %d — layout would shift"
      addr (Bytes.length code) old_len;
  let off = text_offset image addr in
  Bytes.blit code 0 image.Os.Image.text off old_len

let fs_shadow = Operand.fs Vm64.Layout.tls_shadow_offset

let patch_prologue image (site : Scan.prologue_site) =
  replace_same_length image site.Scan.p_addr ~old_len:site.Scan.p_len
    [ Insn.Mov (Operand.reg Reg.RAX, fs_shadow) ]

let patch_epilogue ?check_target image (site : Scan.epilogue_site) =
  let target =
    match check_target with Some t -> t | None -> site.Scan.e_fail_target
  in
  (* mov -8(%rbp),%rdx  ->  mov -8(%rbp),%rdi   (same length: reg swap) *)
  replace_same_length image site.Scan.e_load_addr ~old_len:site.Scan.e_load_len
    [ Insn.Mov (Operand.reg Reg.RDI, Operand.rbp_rel (-8)) ];
  (* xor %fs:0x28,%rdx  ->  call <check>        (both 9 bytes) *)
  replace_same_length image site.Scan.e_xor_addr ~old_len:site.Scan.e_xor_len
    [ Insn.Call (Insn.Abs target) ]
