(** Pattern scanner: locate SSP prologue/epilogue instruction sequences
    inside a binary's functions, by disassembly.

    The prologue signature is the TLS canary load
    [mov %fs:0x28,%rax]; the epilogue signature is the four-instruction
    check of Code 2: load the stack canary into rdx, XOR against
    [%fs:0x28], [je], [call __stack_chk_fail]. *)

type prologue_site = {
  p_func : string;
  p_addr : int64;  (** address of the [mov %fs:0x28,%rax] *)
  p_len : int;
}

type epilogue_site = {
  e_func : string;
  e_load_addr : int64;  (** [mov -8(%rbp),%rdx] *)
  e_load_len : int;
  e_xor_addr : int64;  (** [xor %fs:0x28,%rdx] *)
  e_xor_len : int;
  e_je_addr : int64;
  e_call_addr : int64;
  e_fail_target : int64;  (** resolved target of the failing call *)
}

type sites = {
  prologues : prologue_site list;
  epilogues : epilogue_site list;
}

val scan : Os.Image.t -> sites
(** Scan every function symbol. Functions without SSP code contribute
    nothing. Raises [Isa.Decode.Bad_encoding] on corrupt text. *)
