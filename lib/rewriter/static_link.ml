open Isa
open Isa.Insn

type added = {
  extra_base : int64;
  check_addr : int64;
  fork_addr : int64;
  pthread_addr : int64;
  ctor_addr : int64;
}

let rcx = Operand.reg Reg.RCX
let rdx = Operand.reg Reg.RDX
let rdi = Operand.reg Reg.RDI
let r10 = Operand.reg Reg.R10
let r11 = Operand.reg Reg.R11
let rax = Operand.reg Reg.RAX

let fs_canary = Operand.fs Vm64.Layout.tls_canary_offset
let fs_shadow = Operand.fs Vm64.Layout.tls_shadow_offset

(* Refresh the packed 2x32-bit shadow word: c0 random, c1 = c0 ^ low32(C),
   stored as c1||c0 at %fs:0x2a8. Clobbers rcx/rdx/r10/r11 only. *)
let emit_packed_refresh b =
  Builder.emit_all b
    [
      Rdrand Reg.RCX;
      Mov (rdx, fs_canary);
      Mov (r10, rcx);
      Shift (Shl, r10, 32);
      Shift (Shr, r10, 32) (* c0 *);
      Mov (r11, rdx);
      Shift (Shl, r11, 32);
      Shift (Shr, r11, 32) (* low32(C) *);
      Bin (Xor, r11, r10) (* c1 *);
      Shift (Shl, r11, 32);
      Bin (Or, r11, r10);
      Mov (fs_shadow, r11);
    ]

(* The combined check-and-fail of Figs. 3/4: rdi = c1||c0; verify
   c0 ^ c1 = low32(C). Returns with ZF set on success; aborts otherwise. *)
let emit_check b =
  let ok = Builder.fresh_label b "pssp_ok" in
  Builder.emit_all b
    [
      Mov (r10, rdi);
      Shift (Shl, r10, 32);
      Shift (Shr, r10, 32) (* c0 *);
      Mov (r11, rdi);
      Shift (Shr, r11, 32) (* c1 *);
      Bin (Xor, r10, r11);
      Mov (rdx, fs_canary);
      Shift (Shl, rdx, 32);
      Shift (Shr, rdx, 32);
      Bin (Cmp, r10, rdx);
      Jcc (E, Sym ok);
      Call (Abs (Os.Glibc.addr_of "__GI__fortify_fail"));
    ];
  Builder.label b ok;
  (* ZF = 1 here courtesy of the equality compare; ret preserves flags. *)
  Builder.emit b Ret

let emit_fork_wrapper b ~underlying =
  let done_ = Builder.fresh_label b "fork_done" in
  Builder.emit_all b [ Call (Abs underlying); Bin (Test, rax, rax); Jcc (NE, Sym done_) ];
  emit_packed_refresh b;
  Builder.label b done_;
  Builder.emit b Ret

let emit_ctor b =
  emit_packed_refresh b;
  Builder.emit b Ret

let align16 (n : int64) = Int64.logand (Int64.add n 15L) (Int64.lognot 15L)

let append_section (image : Os.Image.t) =
  let extra_base =
    align16
      (Int64.add image.Os.Image.text_base
         (Int64.of_int (Bytes.length image.Os.Image.text)))
  in
  let b = Builder.create () in
  Builder.label b "__pssp_stack_chk_fail";
  emit_check b;
  Builder.label b "__pssp_fork";
  emit_fork_wrapper b ~underlying:(Os.Glibc.addr_of "fork");
  Builder.label b "__pssp_pthread_create";
  (* the thread wrapper refreshes the caller's shadow after creation;
     the new thread's own TLS refresh is applied at spawn (see
     Kernel.spawn_thread and DESIGN.md) *)
  Builder.emit b (Call (Abs (Os.Glibc.addr_of "pthread_create")));
  emit_packed_refresh b;
  Builder.emit b Ret;
  Builder.label b "__pssp_ctor";
  emit_ctor b;
  let assembled = Builder.assemble b ~base:extra_base ~externs:(fun _ -> None) in
  image.Os.Image.extra_base <- extra_base;
  image.Os.Image.extra <- assembled.Builder.code;
  let label_addr name =
    match List.assoc_opt name assembled.Builder.labels with
    | Some off -> Int64.add extra_base (Int64.of_int off)
    | None -> assert false
  in
  let sym name next =
    let addr = label_addr name in
    let size =
      Int64.to_int
        (Int64.sub
           (match next with
           | Some n -> label_addr n
           | None ->
             Int64.add extra_base (Int64.of_int (Bytes.length assembled.Builder.code)))
           addr)
    in
    { Os.Image.sym_name = name; sym_addr = addr; sym_size = size }
  in
  image.Os.Image.symbols <-
    image.Os.Image.symbols
    @ [
        sym "__pssp_stack_chk_fail" (Some "__pssp_fork");
        sym "__pssp_fork" (Some "__pssp_pthread_create");
        sym "__pssp_pthread_create" (Some "__pssp_ctor");
        sym "__pssp_ctor" None;
      ];
  {
    extra_base;
    check_addr = label_addr "__pssp_stack_chk_fail";
    fork_addr = label_addr "__pssp_fork";
    pthread_addr = label_addr "__pssp_pthread_create";
    ctor_addr = label_addr "__pssp_ctor";
  }

let hook_stub (image : Os.Image.t) ~stub ~target =
  match Os.Image.find_symbol image stub with
  | None -> false
  | Some sym ->
    let jmp = Encode.list_to_bytes [ Jmp (Abs target) ] in
    let pad = sym.Os.Image.sym_size - Bytes.length jmp in
    if pad < 0 then
      raise (Patch.Patch_error (Printf.sprintf "stub %s too small to hook" stub));
    let code = Bytes.cat jmp (Encode.list_to_bytes (List.init pad (fun _ -> Nop))) in
    let off = Int64.to_int (Int64.sub sym.Os.Image.sym_addr image.Os.Image.text_base) in
    Bytes.blit code 0 image.Os.Image.text off (Bytes.length code);
    true
