open Isa

type prologue_site = { p_func : string; p_addr : int64; p_len : int }

type epilogue_site = {
  e_func : string;
  e_load_addr : int64;
  e_load_len : int;
  e_xor_addr : int64;
  e_xor_len : int;
  e_je_addr : int64;
  e_call_addr : int64;
  e_fail_target : int64;
}

type sites = {
  prologues : prologue_site list;
  epilogues : epilogue_site list;
}

let is_fs_canary_mem (m : Operand.mem) =
  m.seg_fs && m.base = None && m.index = None
  && Int64.equal m.disp Vm64.Layout.tls_canary_offset

let is_rbp_guard_mem (m : Operand.mem) =
  (not m.seg_fs)
  && (match m.base with Some r -> Reg.equal r Reg.RBP | None -> false)
  && m.index = None
  && Int64.equal m.disp (-8L)

let insn_len insn = Encode.length insn

let scan_function image (sym : Os.Image.symbol) =
  let listing = Os.Image.disassemble_symbol image sym.Os.Image.sym_name in
  let arr = Array.of_list listing in
  let prologues = ref [] in
  let epilogues = ref [] in
  Array.iteri
    (fun i (addr, insn) ->
      (match insn with
      (* prologue: mov %fs:0x28,%rax *)
      | Insn.Mov (Operand.Reg Reg.RAX, Operand.Mem m) when is_fs_canary_mem m ->
        prologues :=
          { p_func = sym.Os.Image.sym_name; p_addr = addr; p_len = insn_len insn }
          :: !prologues
      (* epilogue: mov -8(%rbp),%rdx; xor %fs:0x28,%rdx; je _; call _ *)
      | Insn.Mov (Operand.Reg Reg.RDX, Operand.Mem m)
        when is_rbp_guard_mem m && i + 3 < Array.length arr -> (
        let _, insn2 = arr.(i + 1) in
        let _, insn3 = arr.(i + 2) in
        let _, insn4 = arr.(i + 3) in
        match (insn2, insn3, insn4) with
        | ( Insn.Bin (Insn.Xor, Operand.Reg Reg.RDX, Operand.Mem mx),
            Insn.Jcc (Insn.E, _),
            Insn.Call (Insn.Abs fail_target) )
          when is_fs_canary_mem mx ->
          let xor_addr = fst arr.(i + 1) in
          epilogues :=
            {
              e_func = sym.Os.Image.sym_name;
              e_load_addr = addr;
              e_load_len = insn_len insn;
              e_xor_addr = xor_addr;
              e_xor_len = insn_len insn2;
              e_je_addr = fst arr.(i + 2);
              e_call_addr = fst arr.(i + 3);
              e_fail_target = fail_target;
            }
            :: !epilogues
        | _ -> ())
      | _ -> ()))
    arr;
  (List.rev !prologues, List.rev !epilogues)

let scan image =
  let prologues = ref [] in
  let epilogues = ref [] in
  List.iter
    (fun (sym : Os.Image.symbol) ->
      if sym.Os.Image.sym_size > 0 then begin
        let p, e = scan_function image sym in
        prologues := !prologues @ p;
        epilogues := !epilogues @ e
      end)
    image.Os.Image.symbols;
  { prologues = !prologues; epilogues = !epilogues }
