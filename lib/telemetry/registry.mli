(** Process-wide metrics registry: named counters, fold metrics, and
    fixed-bucket histograms behind one snapshot/reset surface.

    Domain-safety contract, by backing:
    - counters and histograms use atomics — update from any domain, read
      any time;
    - fold metrics ([register_group]) read subsystem-private records
      that are mutated without synchronisation on hot paths. Their reads
      are exact only after the updating domains have been joined (the
      [Harness.Pool] drivers read snapshots after [Domain.join], which
      provides the happens-before edge) — the same contract the
      pre-registry [Memory.counters]/[Tcache.exec_counters] had.

    Metric names are flat strings namespaced with dots
    (["os.kernel.forks"], ["vm.tcache.hits"]). {!snapshot} flattens
    histograms into [name/le=BOUND], [name/count] and [name/sum]
    integer entries, and sorts everything by name, so snapshot-derived
    output is byte-stable across registration order and [--jobs]. *)

type counter

val counter : string -> counter
(** Get or create the named counter (atomic-backed). Raises
    [Invalid_argument] if the name is registered with another kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int
val counter_name : counter -> string

val register_group : reset:(unit -> unit) -> (string * (unit -> int)) list -> unit
(** Register fold metrics that share one reset action (e.g. three
    counters folded over one list of per-family records, reset by
    clearing the list). Raises [Invalid_argument] on duplicate names. *)

type histogram

val histogram : string -> bounds:int array -> histogram
(** Get or create a histogram with the given strictly-increasing bucket
    upper bounds; values above the last bound land in an overflow
    bucket. *)

val observe : histogram -> int -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> int

val read_int : string -> int
(** Current value of a metric: counter value, fold result, or histogram
    observation count. Raises [Invalid_argument] on unknown names. *)

val mem : string -> bool

val snapshot : unit -> (string * int) list
(** All metrics flattened to (name, value), sorted by name. *)

val merge : (string * int) list list -> (string * int) list
(** Combine per-shard snapshots into one name-sorted snapshot by
    pointwise sum over the union of names. Every backing is additive
    over disjoint work partitions, so merging the snapshots of N
    shards (each reset before its shard ran) is byte-identical to the
    snapshot of the equivalent serial run. *)

val reset : string -> unit
(** Reset one metric. For a fold metric this runs its group's reset, so
    sibling metrics registered in the same group reset too. *)

val reset_all : unit -> unit
