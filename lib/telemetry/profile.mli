(** Cycle-attributed VM profiler.

    When enabled, the execution engine calls {!note} once per dispatched
    basic block with the VM cycles that block charged; samples land in
    per-domain tables (no hot-path synchronisation). Totals are
    deterministic for a deterministic workload and independent of
    [--jobs] — read them after worker domains join.

    The profiler speaks raw guest addresses; symbolisation is the
    caller's concern via the [?resolve] argument (e.g.
    [Os.Image.symbol_covering] for a single-image run). *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val note : addr:int64 -> cycles:int -> unit
(** Attribute [cycles] to the block starting at [addr]. Callers guard on
    {!enabled}; calling while disabled still records. *)

type row = { addr : int64; cycles : int; blocks : int }

val dump : unit -> row list
(** Merged samples across all domains, sorted by cycles descending then
    address ascending. *)

val reset : unit -> unit

val attribute : ?resolve:(int64 -> string option) -> row list -> (string * int * int) list
(** Aggregate rows per resolved symbol name ([(name, cycles, blocks)],
    cycles descending, name ascending); unresolved addresses keep their
    hex form. *)

val report : ?resolve:(int64 -> string option) -> top:int -> unit -> string
(** Human-readable top-N table over {!dump}, 100% = all sampled
    cycles. *)
