(* Lightweight trace spans, emitted as JSONL through a pluggable sink.

   Tracing is off unless a sink is installed; every probe site guards on
   {!enabled} so the disabled cost is one atomic load. Spans carry two
   clocks: the caller-supplied VM cycle counter (deterministic — the
   same workload produces the same cycle stamps on every run and every
   [--jobs] value) and host wall-clock microseconds (for relating guest
   work to host time; inherently nondeterministic). Consumers that diff
   traces should key on names, depths and cycle stamps only.

   Nesting depth is tracked per domain (spans never cross domains);
   emission happens when a span ends, so a child's line precedes its
   parent's — standard for end-stamped span logs. *)

type sink = { emit : string -> unit; close : unit -> unit }

let file_sink path =
  let oc = open_out path in
  {
    emit = (fun line -> output_string oc line; output_char oc '\n');
    close = (fun () -> close_out oc);
  }

let memory_sink () =
  let lines = ref [] in
  ( { emit = (fun line -> lines := line :: !lines); close = ignore },
    fun () -> List.rev !lines )

let sink_ref : sink option Atomic.t = Atomic.make None
let sink_mu = Mutex.create ()

let enabled () = match Atomic.get sink_ref with Some _ -> true | None -> false

let set_sink s = Atomic.set sink_ref s

let close () =
  match Atomic.exchange sink_ref None with
  | None -> ()
  | Some s ->
    Mutex.lock sink_mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock sink_mu) s.close

let emit_line line =
  match Atomic.get sink_ref with
  | None -> ()
  | Some s ->
    Mutex.lock sink_mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock sink_mu) (fun () -> s.emit line)

let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let wall_us () = Int64.of_float (Unix.gettimeofday () *. 1e6)

let args_json args = Util.Json.Obj (List.map (fun (k, v) -> (k, Util.Json.String v)) args)

let span_line ~name ~args ~depth ~dom ~cyc0 ~cyc1 ~wall0 ~wall1 =
  Util.Json.to_string
    (Util.Json.Obj
       ([
          ("ev", Util.Json.String "span");
          ("name", Util.Json.String name);
          ("dom", Util.Json.Int dom);
          ("depth", Util.Json.Int depth);
          ("cyc0", Util.Json.Int (Int64.to_int cyc0));
          ("cyc1", Util.Json.Int (Int64.to_int cyc1));
          ("wall_us0", Util.Json.Int (Int64.to_int wall0));
          ("wall_us1", Util.Json.Int (Int64.to_int wall1));
        ]
       @ if args = [] then [] else [ ("args", args_json args) ]))

let instant_line ~name ~args ~dom ~cyc ~wall =
  Util.Json.to_string
    (Util.Json.Obj
       ([
          ("ev", Util.Json.String "instant");
          ("name", Util.Json.String name);
          ("dom", Util.Json.Int dom);
          ("cyc", Util.Json.Int (Int64.to_int cyc));
          ("wall_us", Util.Json.Int (Int64.to_int wall));
        ]
       @ if args = [] then [] else [ ("args", args_json args) ]))

let dom_id () = (Domain.self () :> int)

let with_span ?(args = []) ?cycles name f =
  if not (enabled ()) then f ()
  else begin
    let cyc = match cycles with Some g -> g | None -> fun () -> 0L in
    let depth = Domain.DLS.get depth_key in
    let d = !depth in
    let cyc0 = cyc () in
    let wall0 = wall_us () in
    incr depth;
    Fun.protect
      ~finally:(fun () ->
        decr depth;
        let cyc1 = cyc () in
        let wall1 = wall_us () in
        emit_line
          (span_line ~name ~args ~depth:d ~dom:(dom_id ()) ~cyc0 ~cyc1 ~wall0 ~wall1))
      f
  end

let instant ?(args = []) ?(cycles = 0L) name =
  if enabled () then
    emit_line
      (instant_line ~name ~args ~dom:(dom_id ()) ~cyc:cycles ~wall:(wall_us ()))
