(** Trace spans with VM-cycle and wall-clock timestamps, emitted as one
    JSON object per line through a pluggable sink.

    Disabled (no sink installed) the probe cost is a single atomic load;
    call sites that would allocate an argument list should additionally
    guard on {!enabled}. Span lines are emitted when the span {e ends},
    so children precede parents in the output; the [depth] field
    reconstructs the nesting. Cycle stamps come from the caller's
    [?cycles] thunk (normally a [Cpu.t]'s cycle counter) and are
    deterministic for a deterministic workload; wall-clock stamps are
    host microseconds and are not. *)

type sink = { emit : string -> unit; close : unit -> unit }

val file_sink : string -> sink
(** Opens the file for writing immediately; lines are flushed on
    {!close}. *)

val memory_sink : unit -> sink * (unit -> string list)
(** In-memory sink plus an accessor returning the lines emitted so far,
    oldest first — for tests. *)

val set_sink : sink option -> unit
(** Installing a sink enables tracing; [None] disables it (without
    closing the previous sink — use {!close} for that). *)

val close : unit -> unit
(** Disable tracing and close the current sink, if any. *)

val enabled : unit -> bool

val with_span :
  ?args:(string * string) list -> ?cycles:(unit -> int64) -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f], emitting a span line when it returns
    (or raises). [?cycles] is sampled at begin and end; it defaults to a
    constant [0L]. *)

val instant : ?args:(string * string) list -> ?cycles:int64 -> string -> unit
(** A zero-duration event line. *)
