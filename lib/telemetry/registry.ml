(* Process-wide metrics registry: the single pane of glass over every
   subsystem's counters.

   Three metric backings, chosen by update rate:

   - [counter]: one shared [Atomic.t]. For rare events (forks, cache
     clones, table materialisations) where a process-global atomic is
     cheap.
   - fold metrics ([register_group]): the subsystem keeps its own
     scheduling-independent records (e.g. one stats record per clone
     family, mutated without synchronisation on the hot path) and
     registers a read callback that folds them. This is how the
     per-block-dispatch counters avoid bouncing a cache line between
     [--jobs] domains; the fold is only called from the driver after
     worker domains join, which provides the happens-before edge.
   - [histogram]: fixed integer bucket bounds, one [Atomic.t] per
     bucket. Safe to observe from any domain.

   Snapshots flatten every metric to (name, int) pairs sorted by name,
   so the JSON files and the MEM_STATS formatter are deterministic for
   any registration order and any [--jobs] value. *)

type counter = { c_name : string; cell : int Atomic.t }

type histogram = {
  h_name : string;
  bounds : int array;  (* strictly increasing bucket upper bounds *)
  buckets : int Atomic.t array;  (* length bounds + 1; last = overflow *)
  h_sum : int Atomic.t;
}

type backing =
  | B_counter of counter
  | B_fold of (unit -> int)
  | B_hist of histogram

type entry = { backing : backing; reset_entry : unit -> unit }

let mu = Mutex.create ()
let entries : (string, entry) Hashtbl.t = Hashtbl.create 64

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt entries name with
      | Some { backing = B_counter c; _ } -> c
      | Some _ -> invalid_arg ("Registry.counter: " ^ name ^ " is not a counter")
      | None ->
        let c = { c_name = name; cell = Atomic.make 0 } in
        Hashtbl.add entries name
          { backing = B_counter c; reset_entry = (fun () -> Atomic.set c.cell 0) };
        c)

let incr c = Atomic.incr c.cell
let add c n = ignore (Atomic.fetch_and_add c.cell n)
let counter_value c = Atomic.get c.cell
let counter_name c = c.c_name

let register_group ~reset metrics =
  locked (fun () ->
      List.iter
        (fun (name, read) ->
          if Hashtbl.mem entries name then
            invalid_arg ("Registry.register_group: duplicate metric " ^ name);
          Hashtbl.add entries name { backing = B_fold read; reset_entry = reset })
        metrics)

let histogram name ~bounds =
  Array.iteri
    (fun i b ->
      if i > 0 && b <= bounds.(i - 1) then
        invalid_arg "Registry.histogram: bounds must be strictly increasing")
    bounds;
  locked (fun () ->
      match Hashtbl.find_opt entries name with
      | Some { backing = B_hist h; _ } -> h
      | Some _ -> invalid_arg ("Registry.histogram: " ^ name ^ " is not a histogram")
      | None ->
        let h =
          {
            h_name = name;
            bounds = Array.copy bounds;
            buckets = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
            h_sum = Atomic.make 0;
          }
        in
        let reset_entry () =
          Array.iter (fun b -> Atomic.set b 0) h.buckets;
          Atomic.set h.h_sum 0
        in
        Hashtbl.add entries name { backing = B_hist h; reset_entry };
        h)

let observe h v =
  let n = Array.length h.bounds in
  let rec bucket i = if i >= n || v <= h.bounds.(i) then i else bucket (i + 1) in
  Atomic.incr h.buckets.(bucket 0);
  ignore (Atomic.fetch_and_add h.h_sum v)

let hist_count h = Array.fold_left (fun acc b -> acc + Atomic.get b) 0 h.buckets
let hist_sum h = Atomic.get h.h_sum

(* ---- reads ---------------------------------------------------------------- *)

let find name = locked (fun () -> Hashtbl.find_opt entries name)

let read_int name =
  match find name with
  | None -> invalid_arg ("Registry.read_int: unknown metric " ^ name)
  | Some { backing = B_counter c; _ } -> counter_value c
  | Some { backing = B_fold f; _ } -> f ()
  | Some { backing = B_hist h; _ } -> hist_count h

let mem name = match find name with Some _ -> true | None -> false

let flatten name backing =
  match backing with
  | B_counter c -> [ (name, counter_value c) ]
  | B_fold f -> [ (name, f ()) ]
  | B_hist h ->
    let buckets =
      Array.to_list
        (Array.mapi
           (fun i b ->
             let label =
               if i < Array.length h.bounds then
                 Printf.sprintf "%s/le=%d" name h.bounds.(i)
               else name ^ "/le=inf"
             in
             (label, Atomic.get b))
           h.buckets)
    in
    buckets @ [ (name ^ "/count", hist_count h); (name ^ "/sum", hist_sum h) ]

let snapshot () =
  let names = locked (fun () -> Hashtbl.fold (fun k e acc -> (k, e) :: acc) entries []) in
  names
  |> List.concat_map (fun (name, e) -> flatten name e.backing)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Shard-merge combination. Every backing is additive over disjoint
   work partitions — counters and histogram buckets/sums count events,
   fold metrics fold per-family records created by the work — so the
   pointwise sum of per-shard snapshots (each taken after a reset_all,
   covering exactly that shard's cells) equals the snapshot a serial
   run would produce. *)
let merge snapshots =
  let tbl = Hashtbl.create 64 in
  List.iter
    (List.iter (fun (name, v) ->
         Hashtbl.replace tbl name
           (v + Option.value ~default:0 (Hashtbl.find_opt tbl name))))
    snapshots;
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset name =
  match find name with
  | None -> invalid_arg ("Registry.reset: unknown metric " ^ name)
  | Some e -> e.reset_entry ()

let reset_all () =
  let es = locked (fun () -> Hashtbl.fold (fun _ e acc -> e :: acc) entries []) in
  (* group resets are shared closures; running one several times is
     harmless (clearing an already-empty record list) *)
  List.iter (fun e -> e.reset_entry ()) es
