(* Cycle-attributed profiler over the VM's per-block exit accounting.

   [Exec.step_block] calls {!note} once per dispatched basic block with
   the block's start address and the cycles the dispatch charged
   (straight-line costs are pre-summed by the compile tier, so one note
   covers the whole block either way). Samples accumulate in a
   per-domain hashtable — no sharing, no atomics on the hot path — and
   {!dump} folds the tables, so totals are exact once worker domains
   have joined and are independent of [--jobs] scheduling (per-block
   cycle counts are deterministic; addition commutes).

   Attribution to symbols happens at report time through an optional
   resolver (the profiler is below the OS layer and cannot see images):
   blocks whose addresses resolve to the same name aggregate, unresolved
   blocks report under their hex address. *)

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

type cell = { mutable cyc : int; mutable blocks : int }

let tables_mu = Mutex.create ()
let tables : (int64, cell) Hashtbl.t list ref = ref []

let table_key =
  Domain.DLS.new_key (fun () ->
      let t : (int64, cell) Hashtbl.t = Hashtbl.create 512 in
      Mutex.lock tables_mu;
      tables := t :: !tables;
      Mutex.unlock tables_mu;
      t)

let note ~addr ~cycles =
  let t = Domain.DLS.get table_key in
  match Hashtbl.find_opt t addr with
  | Some c ->
    c.cyc <- c.cyc + cycles;
    c.blocks <- c.blocks + 1
  | None -> Hashtbl.add t addr { cyc = cycles; blocks = 1 }

type row = { addr : int64; cycles : int; blocks : int }

let all_tables () =
  Mutex.lock tables_mu;
  let ts = !tables in
  Mutex.unlock tables_mu;
  ts

let dump () =
  let merged : (int64, cell) Hashtbl.t = Hashtbl.create 512 in
  List.iter
    (fun t ->
      Hashtbl.iter
        (fun addr c ->
          match Hashtbl.find_opt merged addr with
          | Some m ->
            m.cyc <- m.cyc + c.cyc;
            m.blocks <- m.blocks + c.blocks
          | None -> Hashtbl.add merged addr { cyc = c.cyc; blocks = c.blocks })
        t)
    (all_tables ());
  Hashtbl.fold (fun addr c acc -> { addr; cycles = c.cyc; blocks = c.blocks } :: acc) merged []
  |> List.sort (fun a b ->
         match compare b.cycles a.cycles with 0 -> Int64.compare a.addr b.addr | c -> c)

let reset () = List.iter Hashtbl.reset (all_tables ())

let attribute ?resolve rows =
  let name_of addr =
    match resolve with
    | Some r -> (
      match r addr with Some n -> n | None -> Printf.sprintf "0x%Lx" addr)
    | None -> Printf.sprintf "0x%Lx" addr
  in
  let agg : (string, cell) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let name = name_of r.addr in
      match Hashtbl.find_opt agg name with
      | Some c ->
        c.cyc <- c.cyc + r.cycles;
        c.blocks <- c.blocks + r.blocks
      | None -> Hashtbl.add agg name { cyc = r.cycles; blocks = r.blocks })
    rows;
  Hashtbl.fold (fun name c acc -> (name, c.cyc, c.blocks) :: acc) agg []
  |> List.sort (fun (na, ca, _) (nb, cb, _) ->
         match compare cb ca with 0 -> String.compare na nb | c -> c)

let report ?resolve ~top () =
  let rows = dump () in
  let total = List.fold_left (fun acc r -> acc + r.cycles) 0 rows in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "PROFILE top=%d total_cycles=%d\n" top total);
  if total = 0 then Buffer.add_string buf "  (no samples: profiler was off or nothing ran)\n"
  else begin
    let entries = attribute ?resolve rows in
    List.iteri
      (fun i (name, cyc, blocks) ->
        if i < top then
          Buffer.add_string buf
            (Printf.sprintf "  %2d. %-28s cycles=%-10d blocks=%-8d %5.1f%%\n" (i + 1)
               name cyc blocks
               (100.0 *. float_of_int cyc /. float_of_int total)))
      entries
  end;
  Buffer.contents buf
