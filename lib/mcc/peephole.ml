open Isa
open Isa.Insn

let touches_tls = function
  | Mov (Operand.Mem m, _) | Mov (_, Operand.Mem m) -> m.Operand.seg_fs
  | _ -> false

(* One rewriting pass over the item list; returns the new list and the
   number of rewrites performed. *)
let pass items =
  let count = ref 0 in
  let rec go = function
    (* push r ; pop r'  ->  mov r', r *)
    | Builder.Instruction (Push (Operand.Reg src))
      :: Builder.Instruction (Pop (Operand.Reg dst))
      :: rest ->
      incr count;
      if Reg.equal src dst then go rest (* push r; pop r is a no-op *)
      else
        Builder.Instruction (Mov (Operand.Reg dst, Operand.Reg src)) :: go rest
    (* mov r, r  ->  (nothing) *)
    | Builder.Instruction (Mov (Operand.Reg a, Operand.Reg b)) :: rest
      when Reg.equal a b ->
      incr count;
      go rest
    (* mov $0, r  ->  xor r, r  (flag clobber is safe: codegen never
       consumes flags across a mov) *)
    | Builder.Instruction (Mov (Operand.Reg r, Operand.Imm 0L)) :: rest ->
      incr count;
      Builder.Instruction (Bin (Xor, Operand.Reg r, Operand.Reg r)) :: go rest
    (* jmp L ; (labels...) containing L  ->  drop the jmp *)
    | Builder.Instruction (Jmp (Sym target)) :: rest
      when (let rec next_labels = function
              | Builder.Label l :: tl ->
                String.equal l target || next_labels tl
              | _ -> false
            in
            next_labels rest) ->
      incr count;
      go rest
    (* unreachable code after an unconditional terminator *)
    | (Builder.Instruction term as t) :: rest when Insn.is_terminator term ->
      let rec drop = function
        | (Builder.Instruction insn as hd) :: tl ->
          if touches_tls insn then hd :: drop tl (* conservative: keep *)
          else begin
            incr count;
            drop tl
          end
        | (Builder.Sym_imm_mov _) :: tl ->
          incr count;
          drop tl
        | other -> other
      in
      t :: go (drop rest)
    | item :: rest -> item :: go rest
    | [] -> []
  in
  let items = go items in
  (items, !count)

let optimize_items items =
  let rec fixpoint items n =
    if n > 8 then items
    else begin
      let items', count = pass items in
      if count = 0 then items' else fixpoint items' (n + 1)
    end
  in
  fixpoint items 0

let optimize b = Builder.of_items (optimize_items (Builder.items b))

let rewrites_applied b =
  let _, count = pass (Builder.items b) in
  count
