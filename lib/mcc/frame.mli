(** Stack-frame layout.

    Frames are rbp-based. From high to low addresses:

    {v
    [rbp+8]   return address
    [rbp+0]   saved rbp
    [rbp-8 ..]       guard region (scheme-dependent: 0/1/2/3 words)
    (P-SSP-LV only)  per-critical-variable canaries interleaved
    arrays           (buffers sit just below the guard, SSP-strong style,
                      so an overflowing buffer hits a canary before any
                      scalar)
    scalars
    v}

    A function receives canary code only if it owns a local array — the
    same policy as [-fstack-protector] and the paper's
    [runOnFunction]. *)

type slot = {
  name : string;
  offset : int;  (** rbp-relative, negative *)
  ty : Minic.Ast.ty;
  critical : bool;
}

type lv_canary = {
  canary_offset : int;  (** rbp-relative slot of this canary *)
  guards : string;  (** critical variable in the adjacent word above it *)
}

type t = {
  func : Minic.Ast.func;
  slots : slot list;  (** params (copied in) first, then locals *)
  guarded : bool;  (** scheme canary code applies to this function *)
  guard_words : int;  (** words reserved at rbp-8 downward for the guard *)
  lv_canaries : lv_canary list;  (** ordered top (highest address) first *)
  frame_size : int;  (** [sub rsp, frame_size]; 16-byte aligned *)
}

val layout : scheme:Pssp.Scheme.t -> Minic.Ast.func -> t
(** Compute the layout of one function under the given scheme. *)

val slot : t -> string -> slot
(** Raises [Not_found] via [Invalid_argument] if the name is not local. *)

val find_slot : t -> string -> slot option

val guard_offset : t -> int
(** rbp-relative offset of the first (highest) guard word, i.e. [-8].
    Raises [Invalid_argument] if the frame is unguarded. *)
