open Isa
open Isa.Insn
open Minic

let errorf fmt = Printf.ksprintf (fun s -> raise (Typecheck.Error s)) fmt

let rax = Operand.reg Reg.RAX
let rcx = Operand.reg Reg.RCX

(* ---- data section ------------------------------------------------------ *)

type data_section = {
  buf : Buffer.t;
  strings : (string, int64) Hashtbl.t;
}

let create_data () = { buf = Buffer.create 256; strings = Hashtbl.create 16 }

let data_cursor d = Int64.add Vm64.Layout.data_base (Int64.of_int (Buffer.length d.buf))

let pad_to_8 d =
  while Buffer.length d.buf land 7 <> 0 do
    Buffer.add_char d.buf '\000'
  done

let add_global d (decl : Ast.decl) =
  pad_to_8 d;
  let addr = data_cursor d in
  let size = Ast.sizeof decl.Ast.d_ty in
  let init =
    match decl.Ast.d_init with
    | Some (Ast.Eint v) -> v
    | Some (Ast.Echar c) -> Int64.of_int (Char.code c)
    | Some _ -> errorf "global %s: non-constant initialiser" decl.Ast.d_name
    | None -> 0L
  in
  if size = 8 then begin
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 init;
    Buffer.add_bytes d.buf b
  end
  else if size = 1 then Buffer.add_char d.buf (Char.chr (Int64.to_int init land 0xFF))
  else Buffer.add_bytes d.buf (Bytes.make size '\000');
  addr

let intern_string d s =
  match Hashtbl.find_opt d.strings s with
  | Some addr -> addr
  | None ->
    let addr = data_cursor d in
    Buffer.add_string d.buf s;
    Buffer.add_char d.buf '\000';
    Hashtbl.add d.strings s addr;
    addr

let data_bytes d = Buffer.to_bytes d.buf

(* ---- compilation context ------------------------------------------------ *)

type unit_env = {
  program : Ast.program;
  scheme : Pssp.Scheme.t;
  data : data_section;
  global_addrs : (string * int64) list;
}

type ctx = {
  env : unit_env;
  b : Builder.t;
  frame : Frame.t;
  epilogue : string;
  mutable loops : (string * string) list;  (* (break, continue) *)
}

type place =
  | Local of Frame.slot
  | Global of int64 * Ast.ty

let place_of ctx name =
  match Frame.find_slot ctx.frame name with
  | Some s -> Local s
  | None -> (
    match List.assoc_opt name ctx.env.global_addrs with
    | Some addr ->
      let ty =
        match
          List.find_opt
            (fun d -> String.equal d.Ast.d_name name)
            ctx.env.program.Ast.globals
        with
        | Some d -> d.Ast.d_ty
        | None -> assert false
      in
      Global (addr, ty)
    | None -> errorf "%s: unknown variable %s" ctx.frame.Frame.func.Ast.f_name name)

let place_ty = function
  | Local s -> s.Frame.ty
  | Global (_, ty) -> ty

let emit ctx insn = Builder.emit ctx.b insn
let emit_all ctx insns = Builder.emit_all ctx.b insns

let cond_of_binop = function
  | Ast.Eq -> E
  | Ast.Ne -> NE
  | Ast.Lt -> L
  | Ast.Le -> LE
  | Ast.Gt -> G
  | Ast.Ge -> GE
  | _ -> assert false

(* ---- expressions -------------------------------------------------------- *)

(* Every emit_expr leaves the value in rax. *)
let rec emit_expr ctx e =
  match e with
  | Ast.Eint v -> emit ctx (Mov (rax, Operand.imm v))
  | Ast.Echar c -> emit ctx (Mov (rax, Operand.imm_int (Char.code c)))
  | Ast.Estr s ->
    let addr = intern_string ctx.env.data s in
    emit ctx (Mov (rax, Operand.imm addr))
  | Ast.Evar name -> (
    match place_of ctx name with
    | Local s -> (
      match s.Frame.ty with
      | Ast.Tarray _ ->
        emit ctx
          (Lea (Reg.RAX, { seg_fs = false; base = Some Reg.RBP; index = None;
                           disp = Int64.of_int s.Frame.offset }))
      | Ast.Tchar ->
        emit_all ctx
          [ Bin (Xor, rax, rax); Movb (rax, Operand.rbp_rel s.Frame.offset) ]
      | Ast.Tint | Ast.Tptr _ ->
        emit ctx (Mov (rax, Operand.rbp_rel s.Frame.offset)))
    | Global (addr, ty) -> (
      match ty with
      | Ast.Tarray _ -> emit ctx (Mov (rax, Operand.imm addr))
      | Ast.Tchar ->
        emit_all ctx [ Bin (Xor, rax, rax); Movb (rax, Operand.mem addr) ]
      | Ast.Tint | Ast.Tptr _ -> emit ctx (Mov (rax, Operand.mem addr))))
  | Ast.Eindex (base, idx) ->
    let elem = index_elem_size ctx base in
    emit_index_addr ctx base idx;
    if elem = 1 then begin
      emit_all ctx
        [
          Mov (rcx, rax);
          Bin (Xor, rax, rax);
          Movb (rax, Operand.mem_of Reg.RCX);
        ]
    end
    else emit ctx (Mov (rax, Operand.mem_of Reg.RAX))
  | Ast.Eaddr (Ast.Evar name)
    when Ast.find_func ctx.env.program name <> None
         || Typecheck.is_builtin name ->
    Builder.emit_mov_sym ctx.b Reg.RAX name
  | Ast.Eaddr lv -> emit_lvalue_addr ctx lv
  | Ast.Eunop (op, e) -> (
    emit_expr ctx e;
    match op with
    | Ast.Neg -> emit ctx (Neg rax)
    | Ast.Bnot -> emit ctx (Not rax)
    | Ast.Lnot ->
      emit_all ctx [ Bin (Cmp, rax, Operand.imm 0L); Setcc (E, Reg.RAX) ])
  | Ast.Ebinop (Ast.Land, a, b) ->
    let l_false = Builder.fresh_label ctx.b "and_false" in
    let l_end = Builder.fresh_label ctx.b "and_end" in
    emit_expr ctx a;
    emit_all ctx [ Bin (Cmp, rax, Operand.imm 0L); Jcc (E, Sym l_false) ];
    emit_expr ctx b;
    emit_all ctx [ Bin (Cmp, rax, Operand.imm 0L); Jcc (E, Sym l_false) ];
    emit_all ctx [ Mov (rax, Operand.imm 1L); Jmp (Sym l_end) ];
    Builder.label ctx.b l_false;
    emit ctx (Mov (rax, Operand.imm 0L));
    Builder.label ctx.b l_end
  | Ast.Ebinop (Ast.Lor, a, b) ->
    let l_true = Builder.fresh_label ctx.b "or_true" in
    let l_end = Builder.fresh_label ctx.b "or_end" in
    emit_expr ctx a;
    emit_all ctx [ Bin (Cmp, rax, Operand.imm 0L); Jcc (NE, Sym l_true) ];
    emit_expr ctx b;
    emit_all ctx [ Bin (Cmp, rax, Operand.imm 0L); Jcc (NE, Sym l_true) ];
    emit_all ctx [ Mov (rax, Operand.imm 0L); Jmp (Sym l_end) ];
    Builder.label ctx.b l_true;
    emit ctx (Mov (rax, Operand.imm 1L));
    Builder.label ctx.b l_end
  | Ast.Ebinop ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op, a, b) ->
    emit_binary_operands ctx a b;
    emit_all ctx [ Bin (Cmp, rax, rcx); Setcc (cond_of_binop op, Reg.RAX) ]
  | Ast.Ebinop ((Ast.Shl | Ast.Shr) as op, a, b) -> (
    match b with
    | Ast.Eint k when k >= 0L && k <= 63L ->
      emit_expr ctx a;
      let sop = if op = Ast.Shl then Shl else Shr in
      emit ctx (Shift (sop, rax, Int64.to_int k))
    | _ ->
      errorf "%s: shift amounts must be integer literals in 0..63"
        ctx.frame.Frame.func.Ast.f_name)
  | Ast.Ebinop (op, a, b) ->
    emit_binary_operands ctx a b;
    let bop =
      match op with
      | Ast.Add -> Add
      | Ast.Sub -> Sub
      | Ast.Mul -> Imul
      | Ast.Div -> Idiv
      | Ast.Rem -> Irem
      | Ast.Band -> And
      | Ast.Bor -> Or
      | Ast.Bxor -> Xor
      | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Land
      | Ast.Lor | Ast.Shl | Ast.Shr -> assert false
    in
    emit ctx (Bin (bop, rax, rcx))
  | Ast.Ecall (name, args) ->
    List.iter
      (fun a ->
        emit_expr ctx a;
        emit ctx (Push rax))
      args;
    let nargs = List.length args in
    if nargs > List.length Reg.arg_registers then
      errorf "%s: more than 6 arguments in call to %s"
        ctx.frame.Frame.func.Ast.f_name name;
    let regs = List.filteri (fun i _ -> i < nargs) Reg.arg_registers in
    List.iter (fun r -> emit ctx (Pop (Operand.reg r))) (List.rev regs);
    emit ctx (Call (Sym name))

(* lhs in rax, rhs in rcx *)
and emit_binary_operands ctx a b =
  emit_expr ctx a;
  emit ctx (Push rax);
  emit_expr ctx b;
  emit_all ctx [ Mov (rcx, rax); Pop rax ]

and index_elem_size ctx base =
  match base with
  | Ast.Evar name -> (
    match place_ty (place_of ctx name) with
    | (Ast.Tarray _ | Ast.Tptr _) as ty -> Ast.elem_size ty
    | Ast.Tint | Ast.Tchar ->
      errorf "%s: %s is not indexable" ctx.frame.Frame.func.Ast.f_name name)
  | _ -> errorf "%s: only named arrays/pointers can be indexed"
           ctx.frame.Frame.func.Ast.f_name

(* Address of base[idx] into rax. *)
and emit_index_addr ctx base idx =
  let elem = index_elem_size ctx base in
  emit_expr ctx idx;
  emit ctx (Push rax);
  emit_base_addr ctx base;
  emit ctx (Pop rcx);
  let scale = if elem = 1 then Operand.S1 else Operand.S8 in
  emit ctx
    (Lea (Reg.RAX, { seg_fs = false; base = Some Reg.RAX;
                     index = Some (Reg.RCX, scale); disp = 0L }))

(* Address of the start of an array, or value of a pointer. *)
and emit_base_addr ctx base =
  match base with
  | Ast.Evar name -> (
    match place_of ctx name with
    | Local s -> (
      match s.Frame.ty with
      | Ast.Tarray _ ->
        emit ctx
          (Lea (Reg.RAX, { seg_fs = false; base = Some Reg.RBP; index = None;
                           disp = Int64.of_int s.Frame.offset }))
      | Ast.Tptr _ -> emit ctx (Mov (rax, Operand.rbp_rel s.Frame.offset))
      | Ast.Tint | Ast.Tchar -> assert false)
    | Global (addr, ty) -> (
      match ty with
      | Ast.Tarray _ -> emit ctx (Mov (rax, Operand.imm addr))
      | Ast.Tptr _ -> emit ctx (Mov (rax, Operand.mem addr))
      | Ast.Tint | Ast.Tchar -> assert false))
  | _ -> assert false (* guarded by index_elem_size *)

(* Address of an lvalue into rax. *)
and emit_lvalue_addr ctx lv =
  match lv with
  | Ast.Evar name -> (
    match place_of ctx name with
    | Local s ->
      emit ctx
        (Lea (Reg.RAX, { seg_fs = false; base = Some Reg.RBP; index = None;
                         disp = Int64.of_int s.Frame.offset }))
    | Global (addr, _) -> emit ctx (Mov (rax, Operand.imm addr)))
  | Ast.Eindex (base, idx) -> emit_index_addr ctx base idx
  | _ -> errorf "%s: not an lvalue" ctx.frame.Frame.func.Ast.f_name

(* ---- statements ---------------------------------------------------------- *)

let store_scalar ctx place =
  (* value in rax *)
  match place with
  | Local s -> (
    match s.Frame.ty with
    | Ast.Tchar -> emit ctx (Movb (Operand.rbp_rel s.Frame.offset, rax))
    | Ast.Tint | Ast.Tptr _ -> emit ctx (Mov (Operand.rbp_rel s.Frame.offset, rax))
    | Ast.Tarray _ -> assert false)
  | Global (addr, ty) -> (
    match ty with
    | Ast.Tchar -> emit ctx (Movb (Operand.mem addr, rax))
    | Ast.Tint | Ast.Tptr _ -> emit ctx (Mov (Operand.mem addr, rax))
    | Ast.Tarray _ -> assert false)

let rec emit_stmt ctx s =
  match s with
  | Ast.Sdecl d -> (
    match d.Ast.d_init with
    | None -> ()
    | Some e ->
      emit_expr ctx e;
      store_scalar ctx (place_of ctx d.Ast.d_name))
  | Ast.Sassign (Ast.Evar name, rhs) ->
    emit_expr ctx rhs;
    store_scalar ctx (place_of ctx name)
  | Ast.Sassign ((Ast.Eindex (base, idx) as lhs), rhs) ->
    ignore lhs;
    let elem = index_elem_size ctx base in
    emit_expr ctx rhs;
    emit ctx (Push rax);
    emit_index_addr ctx base idx;
    emit_all ctx [ Mov (rcx, rax); Pop rax ];
    if elem = 1 then emit ctx (Movb (Operand.mem_of Reg.RCX, rax))
    else emit ctx (Mov (Operand.mem_of Reg.RCX, rax))
  | Ast.Sassign (_, _) -> errorf "%s: bad assignment target" ctx.frame.Frame.func.Ast.f_name
  | Ast.Sif (c, then_, else_) ->
    let l_else = Builder.fresh_label ctx.b "else" in
    let l_end = Builder.fresh_label ctx.b "endif" in
    emit_expr ctx c;
    emit_all ctx [ Bin (Cmp, rax, Operand.imm 0L); Jcc (E, Sym l_else) ];
    emit_block ctx then_;
    emit ctx (Jmp (Sym l_end));
    Builder.label ctx.b l_else;
    emit_block ctx else_;
    Builder.label ctx.b l_end
  | Ast.Swhile (c, body) ->
    let l_start = Builder.fresh_label ctx.b "while" in
    let l_end = Builder.fresh_label ctx.b "wend" in
    Builder.label ctx.b l_start;
    emit_expr ctx c;
    emit_all ctx [ Bin (Cmp, rax, Operand.imm 0L); Jcc (E, Sym l_end) ];
    ctx.loops <- (l_end, l_start) :: ctx.loops;
    emit_block ctx body;
    ctx.loops <- List.tl ctx.loops;
    emit ctx (Jmp (Sym l_start));
    Builder.label ctx.b l_end
  | Ast.Sdo_while (body, c) ->
    let l_body = Builder.fresh_label ctx.b "do" in
    let l_cont = Builder.fresh_label ctx.b "docond" in
    let l_end = Builder.fresh_label ctx.b "doend" in
    Builder.label ctx.b l_body;
    ctx.loops <- (l_end, l_cont) :: ctx.loops;
    emit_block ctx body;
    ctx.loops <- List.tl ctx.loops;
    Builder.label ctx.b l_cont;
    emit_expr ctx c;
    emit_all ctx [ Bin (Cmp, rax, Operand.imm 0L); Jcc (NE, Sym l_body) ];
    Builder.label ctx.b l_end
  | Ast.Sfor (init, cond, step, body) ->
    let l_cond = Builder.fresh_label ctx.b "for" in
    let l_cont = Builder.fresh_label ctx.b "forstep" in
    let l_end = Builder.fresh_label ctx.b "forend" in
    Option.iter (emit_stmt ctx) init;
    Builder.label ctx.b l_cond;
    (match cond with
    | Some c ->
      emit_expr ctx c;
      emit_all ctx [ Bin (Cmp, rax, Operand.imm 0L); Jcc (E, Sym l_end) ]
    | None -> ());
    ctx.loops <- (l_end, l_cont) :: ctx.loops;
    emit_block ctx body;
    ctx.loops <- List.tl ctx.loops;
    Builder.label ctx.b l_cont;
    Option.iter (emit_stmt ctx) step;
    emit ctx (Jmp (Sym l_cond));
    Builder.label ctx.b l_end
  | Ast.Sreturn e ->
    (match e with
    | Some e -> emit_expr ctx e
    | None -> emit ctx (Mov (rax, Operand.imm 0L)));
    emit ctx (Jmp (Sym ctx.epilogue))
  | Ast.Sexpr e -> emit_expr ctx e
  | Ast.Sbreak -> (
    match ctx.loops with
    | (brk, _) :: _ -> emit ctx (Jmp (Sym brk))
    | [] -> errorf "%s: break outside loop" ctx.frame.Frame.func.Ast.f_name)
  | Ast.Scontinue -> (
    match ctx.loops with
    | (_, cont) :: _ -> emit ctx (Jmp (Sym cont))
    | [] -> errorf "%s: continue outside loop" ctx.frame.Frame.func.Ast.f_name)
  | Ast.Sblock b -> emit_block ctx b

and emit_block ctx block = List.iter (emit_stmt ctx) block

(* ---- whole function ------------------------------------------------------ *)

let compile_function ?scheme env (func : Ast.func) =
  let scheme = Option.value scheme ~default:env.scheme in
  let b = Builder.create () in
  let frame = Frame.layout ~scheme func in
  let epilogue = Builder.fresh_label b "epilogue" in
  let ctx = { env; b; frame; epilogue; loops = [] } in
  Builder.emit_all b
    [
      Push (Operand.reg Reg.RBP);
      Mov (Operand.reg Reg.RBP, Operand.reg Reg.RSP);
      Bin (Sub, Operand.reg Reg.RSP, Operand.imm_int frame.Frame.frame_size);
    ];
  (* Spill parameters before the protection prologue so canary code may
     clobber scratch/argument registers. *)
  List.iteri
    (fun i (name, _ty) ->
      let s = Frame.slot frame name in
      let r = List.nth Reg.arg_registers i in
      Builder.emit b (Mov (Operand.rbp_rel s.Frame.offset, Operand.reg r)))
    func.Ast.f_params;
  Protect.prologue ~scheme b frame;
  emit_block ctx func.Ast.f_body;
  Builder.emit b (Mov (rax, Operand.imm 0L));
  Builder.label b epilogue;
  Protect.epilogue ~scheme b frame;
  Builder.emit_all b [ Leave; Ret ];
  b
