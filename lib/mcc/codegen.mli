(** Mini-C to vm64 code generation for one function.

    A simple accumulator model: every expression leaves its value in
    rax; temporaries live on the stack, so no register allocation is
    needed and nested calls are safe. Parameters are copied from the
    SysV argument registers into frame slots before the protection
    prologue runs (so canary code may clobber scratch registers
    freely). *)

type data_section
(** Mutable rodata/data builder shared across a compilation unit. *)

val create_data : unit -> data_section

val add_global : data_section -> Minic.Ast.decl -> int64
(** Reserve (and initialise) a global; returns its absolute address. *)

val intern_string : data_section -> string -> int64
(** Address of a NUL-terminated pooled string literal. *)

val data_bytes : data_section -> bytes

type unit_env = {
  program : Minic.Ast.program;
  scheme : Pssp.Scheme.t;
  data : data_section;
  global_addrs : (string * int64) list;
}

val compile_function :
  ?scheme:Pssp.Scheme.t -> unit_env -> Minic.Ast.func -> Isa.Builder.t
(** Emit a complete function (frame setup, protection prologue, body,
    protection epilogue, return). Calls are left as symbolic targets for
    the linker. [scheme] overrides the unit's scheme for this function —
    how a binary mixes P-SSP and SSP code in one control flow (SVI-C).
    Raises [Minic.Typecheck.Error] for constructs the backend cannot
    compile (e.g. non-constant shift amounts). *)
