(** Whole-program compilation: Mini-C source → executable image.

    The simulated equivalent of `clang -fstack-protector` /
    `clang -fP-SSP …`: parse, typecheck, lay out data, codegen each
    function with the selected protection pass, link against the
    simulated glibc, and (for static linkage) embed local stubs for
    [fork], [pthread_create] and [__stack_chk_fail] that the binary
    rewriter can later hook (§V-D). *)

val compile :
  ?name:string ->
  ?scheme:Pssp.Scheme.t ->
  ?scheme_overrides:(string * Pssp.Scheme.t) list ->
  ?linkage:Os.Image.linkage ->
  ?optimize:bool ->
  Minic.Ast.program ->
  Os.Image.t
(** Raises [Minic.Typecheck.Error] on invalid programs. [optimize]
    (default false, mirroring the paper's default-options builds) runs
    AST constant folding ({!Minic.Fold}) and the {!Peephole} pass over
    every function. [scheme_overrides] selects a different protection
    scheme for the named functions — the SVI-C mixed-deployment setting
    (e.g. application code under P-SSP against library code under
    SSP). *)

val compile_source :
  ?name:string ->
  ?scheme:Pssp.Scheme.t ->
  ?linkage:Os.Image.linkage ->
  ?optimize:bool ->
  string ->
  Os.Image.t
(** Parse then {!compile}. Raises parser/lexer errors as well. *)

val preload_for : Pssp.Scheme.t -> Os.Preload.mode
(** The runtime preload mode a compiler-based deployment of the scheme
    needs ([Pssp] wants the wide shadow refresher, the baselines their
    own fork fixups, everything else none). *)

val static_stub_names : string list
(** glibc functions embedded as local stubs under static linkage. *)
