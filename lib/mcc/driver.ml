open Isa

let static_stub_names = [ "fork"; "pthread_create"; "__stack_chk_fail" ]

let stub_builder name =
  let b = Builder.create () in
  Builder.emit_all b [ Insn.Call (Insn.Abs (Os.Glibc.addr_of name)); Insn.Ret ];
  b

let preload_for (scheme : Pssp.Scheme.t) =
  match scheme with
  | Pssp.Scheme.Pssp -> Os.Preload.Pssp_wide
  | Raf_ssp -> Os.Preload.Raf
  | Dynaguard -> Os.Preload.Dynaguard_fix
  | Dcr -> Os.Preload.Dcr_fix
  | None_ | Ssp | Pssp_nt | Pssp_lv _ | Pssp_owf | Pssp_owf_weak | Pssp_gb
  | Shadow_compact | Shadow_parallel | Pac_canary | Wasm_ssp ->
    Os.Preload.No_preload

let compile ?(name = "a.out") ?(scheme = Pssp.Scheme.Ssp)
    ?(scheme_overrides = []) ?(linkage = Os.Image.Dynamic) ?(optimize = false)
    (program : Minic.Ast.program) =
  ignore (Minic.Typecheck.check program);
  let program = if optimize then Minic.Fold.program program else program in
  let data = Codegen.create_data () in
  let global_addrs =
    List.map
      (fun d -> (d.Minic.Ast.d_name, Codegen.add_global data d))
      program.Minic.Ast.globals
  in
  let env = { Codegen.program; scheme; data; global_addrs } in
  let func_builders =
    List.map
      (fun f ->
        let override = List.assoc_opt f.Minic.Ast.f_name scheme_overrides in
        let b = Codegen.compile_function ?scheme:override env f in
        (f.Minic.Ast.f_name, if optimize then Peephole.optimize b else b))
      program.Minic.Ast.funcs
  in
  let stub_builders =
    match linkage with
    | Os.Image.Static -> List.map (fun n -> (n, stub_builder n)) static_stub_names
    | Os.Image.Dynamic -> []
  in
  let builders = func_builders @ stub_builders in
  (* First pass: assign addresses using encoded sizes (stable under
     symbol resolution because targets are fixed-width). *)
  let base = Vm64.Layout.text_base in
  let addresses = Hashtbl.create 16 in
  let cursor = ref base in
  let sized =
    List.map
      (fun (fname, b) ->
        let addr = !cursor in
        let size = Builder.size b in
        Hashtbl.add addresses fname addr;
        cursor := Int64.add !cursor (Int64.of_int size);
        (fname, b, addr, size))
      builders
  in
  let externs sym =
    match Hashtbl.find_opt addresses sym with
    | Some addr -> Some addr
    | None -> (
      match Os.Glibc.addr_of sym with
      | addr -> Some addr
      | exception Invalid_argument _ -> None)
  in
  let text = Buffer.create 4096 in
  let symbols =
    List.map
      (fun (fname, b, addr, size) ->
        let assembled = Builder.assemble b ~base:addr ~externs in
        assert (Bytes.length assembled.Builder.code = size);
        Buffer.add_bytes text assembled.Builder.code;
        { Os.Image.sym_name = fname; sym_addr = addr; sym_size = size })
      sized
  in
  Os.Image.create ~name ~linkage ~data:(Codegen.data_bytes data)
    ~scheme_tag:(Pssp.Scheme.name scheme) ~entry:"main"
    ~text:(Buffer.to_bytes text) ~symbols ()

let compile_source ?name ?scheme ?linkage ?optimize src =
  compile ?name ?scheme ?linkage ?optimize (Minic.Parser.parse src)
