(** Peephole optimisation over assembled-but-unlinked function bodies.

    Local, semantics-preserving rewrites applied to fixpoint:
    - [push r; pop r'] → [mov r',r] (the accumulator codegen's
      argument-passing pattern);
    - [mov r,r] → (deleted);
    - [mov $0,r] → [xor r,r] (shorter encoding);
    - a jump to the immediately following label → (deleted);
    - unreachable instructions between an unconditional terminator
      (jmp/ret/hlt) and the next label → (deleted).

    None of the rewrites touches a TLS-accessing instruction, so the SSP
    patterns the binary rewriter scans for survive optimisation
    unchanged. *)

val optimize : Isa.Builder.t -> Isa.Builder.t
(** Returns a new builder; the input is not modified. *)

val rewrites_applied : Isa.Builder.t -> int
(** How many rewrites {!optimize} would perform (diagnostics/tests). *)
