(** Scheme-specific prologue/epilogue emission — the compiler-plugin
    half of the paper (its Codes 1, 2, 3, 4, 7, 8, 9, plus the
    DynaGuard / DCR / RAF-SSP baselines of Table I).

    [prologue] emits the canary setup code that belongs right after the
    frame is established ([push %rbp; mov %rsp,%rbp; sub $N,%rsp]);
    [epilogue] emits the check that belongs right before
    [leaveq; retq]. Both are no-ops for unguarded frames. The failure
    path calls the symbol ["__stack_chk_fail"], resolved at link time to
    the glibc entry (dynamic) or a local stub (static). *)

val prologue : scheme:Pssp.Scheme.t -> Isa.Builder.t -> Frame.t -> unit

val epilogue : scheme:Pssp.Scheme.t -> Isa.Builder.t -> Frame.t -> unit
(** Preserves rax (the return value). *)
