open Isa
open Isa.Insn

let rax = Operand.reg Reg.RAX
let rcx = Operand.reg Reg.RCX
let rdx = Operand.reg Reg.RDX
let rdi = Operand.reg Reg.RDI
let r10 = Operand.reg Reg.R10
let r11 = Operand.reg Reg.R11

let fs_canary = Operand.fs Vm64.Layout.tls_canary_offset
let fs_shadow0 = Operand.fs Vm64.Layout.tls_shadow_offset
let fs_shadow1 = Operand.fs Vm64.Layout.tls_shadow_offset_hi
let fs_dcr_head = Operand.fs Vm64.Layout.tls_dcr_head_offset
let fs_shadow_sp = Operand.fs Vm64.Layout.tls_shadow_sp_offset

let slot off = Operand.rbp_rel off

let dg_count =
  Operand.mem Vm64.Layout.dynaguard_buffer_base

let gb_count = Operand.mem Vm64.Layout.global_canary_buffer_base

let gb_entry reg =
  (* buffer[1 + count] with the count in [reg] *)
  Operand.mem
    ~index:(reg, Operand.S8)
    (Int64.add Vm64.Layout.global_canary_buffer_base 8L)

let dg_entry =
  (* buffer[1 + count]: base + 8 + count*8 with count in rax *)
  Operand.mem
    ~index:(Reg.RAX, Operand.S8)
    (Int64.add Vm64.Layout.dynaguard_buffer_base 8L)

let fail_check b cond_ok =
  (* jcc ok; call __stack_chk_fail; ok: *)
  let ok = Builder.fresh_label b "chk_ok" in
  Builder.emit b (Jcc (cond_ok, Sym ok));
  Builder.emit b (Call (Sym "__stack_chk_fail"));
  Builder.label b ok

(* ---- prologues --------------------------------------------------------- *)

(* Code 1: classic SSP. *)
let prologue_ssp b =
  Builder.emit_all b [ Mov (rax, fs_canary); Mov (slot (-8), rax) ]

(* Code 3: P-SSP — copy the two shadow halves. *)
let prologue_pssp b =
  Builder.emit_all b
    [
      Mov (rax, fs_shadow0);
      Mov (slot (-8), rax);
      Mov (rax, fs_shadow1);
      Mov (slot (-16), rax);
    ]

(* Code 7: P-SSP-NT — split C afresh with rdrand at every call. *)
let prologue_pssp_nt b =
  Builder.emit_all b
    [
      Rdrand Reg.RAX;
      Mov (slot (-8), rax);
      Mov (rcx, fs_canary);
      Bin (Xor, rcx, rax);
      Mov (slot (-16), rcx);
    ]

(* Algorithm 2: P-SSP-LV — one canary per critical variable; all canaries
   XOR to C. rcx accumulates the running XOR. *)
let prologue_pssp_lv b (frame : Frame.t) =
  Builder.emit_all b [ Rdrand Reg.RAX; Mov (slot (-8), rax); Mov (rcx, rax) ];
  let n = List.length frame.Frame.lv_canaries in
  List.iteri
    (fun i (c : Frame.lv_canary) ->
      if i < n - 1 then
        Builder.emit_all b
          [
            Rdrand Reg.RAX;
            Mov (slot c.Frame.canary_offset, rax);
            Bin (Xor, rcx, rax);
          ]
      else
        (* last canary = C xor (xor of all previous) *)
        Builder.emit_all b
          [
            Mov (rax, fs_canary);
            Bin (Xor, rax, rcx);
            Mov (slot c.Frame.canary_offset, rax);
          ])
    frame.Frame.lv_canaries;
  (* With no critical variables in this frame the single random C0 could
     never be validated, so pair it NT-style at -16. *)
  if n = 0 then begin
    Builder.emit_all b
      [ Mov (rax, fs_canary); Bin (Xor, rax, rcx); Mov (slot (-16), rax) ]
  end
  else
    (* keep the -16 slot deterministic: C1 completing the ret-guard pair
       is folded into the chain; mirror C0 there for layout uniformity *)
    Builder.emit_all b [ Mov (rax, slot (-8)); Mov (slot (-16), rax) ]

(* Code 8: P-SSP-OWF — canary = AES_{r12:r13}(nonce || retaddr).
   [weak] drops the rdtsc nonce (the §IV-C ablation). *)
let prologue_pssp_owf ?(weak = false) b =
  Builder.emit_all b
    (if weak then [ Mov (rax, Operand.imm 0L) ]
     else [ Rdtsc; Shift (Shl, rdx, 0x20); Bin (Or, rax, rdx) ]);
  Builder.emit_all b
    [
      Mov (slot (-8), rax) (* nonce *);
      Movq_to_xmm (Reg.Xmm.xmm15, Reg.RAX);
      Movhps_load (Reg.Xmm.xmm15, { seg_fs = false; base = Some Reg.RBP; index = None; disp = 8L });
      Movq_to_xmm (Reg.Xmm.xmm1, Reg.R13);
      Pinsrq_high (Reg.Xmm.xmm1, Reg.R12);
      Call (Sym "AES_ENCRYPT_128");
      Movdqu_store ({ seg_fs = false; base = Some Reg.RBP; index = None; disp = -24L }, Reg.Xmm.xmm15);
    ]

(* SVII-C: the global-buffer variant. The stack keeps only C0 (one word,
   the SSP layout); C1 = C0 xor C is pushed into the per-process global
   buffer, which fork clones along with the address space — so inherited
   frames still verify in children, with the full 64-bit entropy. *)
let prologue_pssp_gb b =
  Builder.emit_all b
    [
      Rdrand Reg.RAX;
      Mov (slot (-8), rax) (* C0 on the stack *);
      Mov (rcx, fs_canary);
      Bin (Xor, rcx, rax) (* C1 *);
      Mov (rdx, gb_count);
      Mov (gb_entry Reg.RDX, rcx);
      Bin (Add, rdx, Operand.imm 1L);
      Mov (gb_count, rdx);
    ]

let epilogue_pssp_gb b =
  Builder.emit_all b
    [
      Mov (r10, gb_count);
      Bin (Sub, r10, Operand.imm 1L);
      Mov (gb_count, r10);
      Mov (r11, gb_entry Reg.R10) (* C1 back from the buffer *);
      Mov (rdx, slot (-8)) (* C0 from the stack *);
      Bin (Xor, rdx, r11);
      Bin (Xor, rdx, fs_canary);
    ];
  fail_check b E

(* DynaGuard: SSP plus recording the canary's address in the canary
   address buffer so the fork handler can rewrite it. *)
let prologue_dynaguard b =
  prologue_ssp b;
  Builder.emit_all b
    [
      Mov (rax, dg_count);
      Lea (Reg.RCX, { seg_fs = false; base = Some Reg.RBP; index = None; disp = -8L });
      Mov (dg_entry, rcx);
      Bin (Add, rax, Operand.imm 1L);
      Mov (dg_count, rax);
    ]

(* DCR: the stack canary embeds the word-distance to the previous canary
   (16 high bits); the TLS head pointer tracks the newest one. *)
let prologue_dcr b =
  let have = Builder.fresh_label b "dcr_have" in
  let pack = Builder.fresh_label b "dcr_pack" in
  Builder.emit_all b
    [
      Mov (rax, fs_canary);
      Shift (Shl, rax, 16);
      Shift (Shr, rax, 16) (* low48(C) *);
      Mov (rcx, fs_dcr_head);
      Bin (Test, rcx, rcx);
      Jcc (NE, Sym have);
      Mov (rdx, Operand.imm 0xFFFFL);
      Jmp (Sym pack);
    ];
  Builder.label b have;
  Builder.emit_all b
    [
      Mov (rdx, rcx);
      Lea (Reg.R11, { seg_fs = false; base = Some Reg.RBP; index = None; disp = -8L });
      Bin (Sub, rdx, r11);
      Shift (Sar, rdx, 3);
    ];
  Builder.label b pack;
  Builder.emit_all b
    [
      Shift (Shl, rdx, 48);
      Bin (Or, rax, rdx);
      Mov (slot (-8), rax);
      Lea (Reg.R11, { seg_fs = false; base = Some Reg.RBP; index = None; disp = -8L });
      Mov (fs_dcr_head, r11);
    ]

(* ---- epilogues ---------------------------------------------------------- *)

(* Code 2: SSP check. *)
let epilogue_ssp b =
  Builder.emit_all b [ Mov (rdx, slot (-8)); Bin (Xor, rdx, fs_canary) ];
  fail_check b E

(* Code 4: P-SSP check — C0 xor C1 must equal C. *)
let epilogue_pssp b =
  Builder.emit_all b
    [
      Mov (rdx, slot (-8));
      Mov (rdi, slot (-16));
      Bin (Xor, rdx, rdi);
      Bin (Xor, rdx, fs_canary);
    ];
  fail_check b E

(* P-SSP-LV: XOR of every canary in the frame must equal C. *)
let epilogue_pssp_lv b (frame : Frame.t) =
  match frame.Frame.lv_canaries with
  | [] -> epilogue_pssp b
  | canaries ->
    Builder.emit b (Mov (rdx, slot (-8)));
    List.iter
      (fun (c : Frame.lv_canary) ->
        Builder.emit b (Bin (Xor, rdx, slot c.Frame.canary_offset)))
      canaries;
    Builder.emit b (Bin (Xor, rdx, fs_canary));
    fail_check b E

(* Code 9: P-SSP-OWF — recompute AES(nonce || retaddr) and compare the
   full 128 bits. rcx is used to keep rax (return value) intact. *)
let epilogue_pssp_owf b =
  Builder.emit_all b
    [
      Mov (rcx, slot (-8));
      Movq_to_xmm (Reg.Xmm.xmm15, Reg.RCX);
      Movhps_load (Reg.Xmm.xmm15, { seg_fs = false; base = Some Reg.RBP; index = None; disp = 8L });
      Movq_to_xmm (Reg.Xmm.xmm1, Reg.R13);
      Pinsrq_high (Reg.Xmm.xmm1, Reg.R12);
      Push rax;
      Call (Sym "AES_ENCRYPT_128");
      Pop rax;
      Pcmpeq128 (Reg.Xmm.xmm15, { seg_fs = false; base = Some Reg.RBP; index = None; disp = -24L });
    ];
  fail_check b E

let epilogue_dynaguard b =
  epilogue_ssp b;
  Builder.emit_all b
    [
      Mov (rdx, dg_count);
      Bin (Sub, rdx, Operand.imm 1L);
      Mov (dg_count, rdx);
    ]

let epilogue_dcr b =
  let restore = Builder.fresh_label b "dcr_restore" in
  let unlink = Builder.fresh_label b "dcr_unlink" in
  let done_ = Builder.fresh_label b "dcr_done" in
  Builder.emit_all b
    [
      Mov (rdx, slot (-8));
      Mov (r10, rdx);
      Shift (Shl, r10, 16);
      Shift (Shr, r10, 16);
      Mov (r11, fs_canary);
      Shift (Shl, r11, 16);
      Shift (Shr, r11, 16);
      Bin (Xor, r10, r11);
    ];
  fail_check b E;
  (* unlink: head := previous canary (or 0 at list end) *)
  Builder.emit_all b
    [
      Mov (rcx, rdx);
      Shift (Shr, rcx, 48);
      Bin (Cmp, rcx, Operand.imm 0xFFFFL);
      Jcc (NE, Sym restore);
    ];
  Builder.label b unlink;
  Builder.emit_all b [ Mov (fs_dcr_head, Operand.imm 0L); Jmp (Sym done_) ];
  Builder.label b restore;
  Builder.emit_all b
    [
      Lea (Reg.R11, { seg_fs = false; base = Some Reg.RBP; index = None; disp = -8L });
      Shift (Shl, rcx, 3);
      Bin (Add, rcx, r11);
      Mov (fs_dcr_head, rcx);
    ];
  Builder.label b done_

(* ---- shadow stacks (Burow et al.'s SoK) --------------------------------- *)

(* Compact variant: a separate return-address stack with its own pointer
   in TLS. The prologue pushes the frame's return address; the epilogue
   pops it and compares against the (possibly overwritten) one about to
   be used. No canary word on the frame at all. *)
let prologue_shadow_compact b =
  Builder.emit_all b
    [
      Mov (rcx, fs_shadow_sp);
      Mov (rax, slot 8) (* the return address *);
      Mov (Operand.mem_of Reg.RCX, rax);
      Bin (Add, rcx, Operand.imm 8L);
      Mov (fs_shadow_sp, rcx);
    ]

let epilogue_shadow_compact b =
  Builder.emit_all b
    [
      Mov (rcx, fs_shadow_sp);
      Bin (Sub, rcx, Operand.imm 8L);
      Mov (fs_shadow_sp, rcx);
      Mov (rdx, Operand.mem_of Reg.RCX);
      Bin (Xor, rdx, slot 8);
    ];
  fail_check b E

(* Parallel variant: each return-address slot is mirrored at a fixed
   offset below the stack — no pointer to maintain, one store and one
   compare at a constant displacement from rbp. *)
let parallel_mirror_slot =
  Operand.mem_of
    ~disp:(Int64.sub 8L Vm64.Layout.shadow_parallel_delta)
    Reg.RBP

let prologue_shadow_parallel b =
  Builder.emit_all b [ Mov (rax, slot 8); Mov (parallel_mirror_slot, rax) ]

let epilogue_shadow_parallel b =
  Builder.emit_all b
    [ Mov (rdx, slot 8); Bin (Xor, rdx, parallel_mirror_slot) ];
  fail_check b E

(* ---- PACed canary (Liljestrand et al.) ---------------------------------- *)

(* Draw a fresh random canary per call and sign it under the per-process
   PAC key with the frame address (rbp) as modifier: a disclosed canary
   neither replays across forks (fresh draw) nor relocates to another
   frame (the MAC binds rbp). *)
let prologue_pac_canary b =
  Builder.emit_all b
    [ Rdrand Reg.RAX; Pac (Reg.RAX, Reg.RBP); Mov (slot (-8), rax) ]

let epilogue_pac_canary b =
  (* [aut] sets ZF iff the tag authenticates under (key, rbp) *)
  Builder.emit_all b [ Mov (rdx, slot (-8)); Aut (Reg.RDX, Reg.RBP) ];
  fail_check b E

(* ---- dispatch ----------------------------------------------------------- *)

let prologue ~scheme b (frame : Frame.t) =
  if frame.Frame.guarded then
    match (scheme : Pssp.Scheme.t) with
    | Pssp.Scheme.None_ -> ()
    | Ssp | Raf_ssp -> prologue_ssp b
    | Dynaguard -> prologue_dynaguard b
    | Dcr -> prologue_dcr b
    | Pssp -> prologue_pssp b
    | Pssp_nt -> prologue_pssp_nt b
    | Pssp_lv _ -> prologue_pssp_lv b frame
    | Pssp_owf -> prologue_pssp_owf b
    | Pssp_owf_weak -> prologue_pssp_owf ~weak:true b
    | Pssp_gb -> prologue_pssp_gb b
    | Shadow_compact -> prologue_shadow_compact b
    | Shadow_parallel -> prologue_shadow_parallel b
    | Pac_canary -> prologue_pac_canary b
    (* wasm-ssp compiles exactly like SSP; the no-trap semantics are a
       property of the process's address space (see Os.Kernel.spawn) *)
    | Wasm_ssp -> prologue_ssp b

let epilogue ~scheme b (frame : Frame.t) =
  if frame.Frame.guarded then
    match (scheme : Pssp.Scheme.t) with
    | Pssp.Scheme.None_ -> ()
    | Ssp | Raf_ssp -> epilogue_ssp b
    | Dynaguard -> epilogue_dynaguard b
    | Dcr -> epilogue_dcr b
    | Pssp | Pssp_nt -> epilogue_pssp b
    | Pssp_lv _ -> epilogue_pssp_lv b frame
    | Pssp_owf | Pssp_owf_weak -> epilogue_pssp_owf b
    | Pssp_gb -> epilogue_pssp_gb b
    | Shadow_compact -> epilogue_shadow_compact b
    | Shadow_parallel -> epilogue_shadow_parallel b
    | Pac_canary -> epilogue_pac_canary b
    | Wasm_ssp -> epilogue_ssp b
