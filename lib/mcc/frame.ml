open Minic

type slot = { name : string; offset : int; ty : Ast.ty; critical : bool }

type lv_canary = { canary_offset : int; guards : string }

type t = {
  func : Ast.func;
  slots : slot list;
  guarded : bool;
  guard_words : int;
  lv_canaries : lv_canary list;
  frame_size : int;
}

let is_array = function Ast.Tarray _ -> true | _ -> false

let align8 n = (n + 7) land lnot 7
let align16 n = (n + 15) land lnot 15

let scheme_guard_words (scheme : Pssp.Scheme.t) =
  match scheme with
  | Pssp.Scheme.None_ -> 0
  | Shadow_compact | Shadow_parallel -> 0 (* guard lives off-frame *)
  | Ssp | Raf_ssp | Dynaguard | Dcr | Pssp_gb | Pac_canary | Wasm_ssp -> 1
  | Pssp | Pssp_nt | Pssp_lv _ -> 2
  | Pssp_owf | Pssp_owf_weak -> 3 (* nonce + 16-byte ciphertext *)

let layout ~scheme (func : Ast.func) =
  let locals = Typecheck.(block_decls func.Ast.f_body) in
  let has_buffer =
    List.exists (fun d -> is_array d.Ast.d_ty) locals
  in
  let guarded = has_buffer && not (Pssp.Scheme.equal scheme Pssp.Scheme.None_) in
  let guard_words = if guarded then scheme_guard_words scheme else 0 in
  let lv_mode =
    guarded && (match scheme with Pssp.Scheme.Pssp_lv _ -> true | _ -> false)
  in
  (* Cursor walks down from rbp; [take n] reserves n bytes and returns the
     offset of the *lowest* byte reserved. *)
  let cursor = ref 0 in
  let take bytes =
    cursor := !cursor - align8 bytes;
    !cursor
  in
  ignore (take (8 * guard_words));
  let slots = ref [] in
  let lv_canaries = ref [] in
  let add_slot d =
    let offset = take (Ast.sizeof d.Ast.d_ty) in
    slots := { name = d.Ast.d_name; offset; ty = d.Ast.d_ty; critical = d.Ast.d_critical } :: !slots
  in
  let criticals, rest = List.partition (fun d -> lv_mode && d.Ast.d_critical) locals in
  let arrays, scalars = List.partition (fun d -> is_array d.Ast.d_ty) rest in
  (* P-SSP-LV: each critical variable's canary sits in the adjacent word
     at a LOWER address (Algorithm 2), so an overflow ascending from a
     buffer below kills the canary before reaching the variable. *)
  List.iter
    (fun d ->
      add_slot d;
      let canary_offset = take 8 in
      lv_canaries := { canary_offset; guards = d.Ast.d_name } :: !lv_canaries)
    criticals;
  List.iter add_slot arrays;
  List.iter add_slot scalars;
  (* Parameters are copied out of registers into frame slots. *)
  List.iter
    (fun (name, ty) ->
      let offset = take (Ast.sizeof ty) in
      slots := { name; offset; ty; critical = false } :: !slots)
    func.Ast.f_params;
  {
    func;
    slots = List.rev !slots;
    guarded;
    guard_words;
    lv_canaries = List.rev !lv_canaries;
    frame_size = align16 (- !cursor);
  }

let find_slot t name = List.find_opt (fun s -> String.equal s.name name) t.slots

let slot t name =
  match find_slot t name with
  | Some s -> s
  | None ->
    invalid_arg
      (Printf.sprintf "Frame.slot: %s not in frame of %s" name t.func.Ast.f_name)

let guard_offset t =
  if not t.guarded then
    invalid_arg
      (Printf.sprintf "Frame.guard_offset: %s is unguarded" t.func.Ast.f_name);
  -8
