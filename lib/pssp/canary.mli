(** Canary material and the paper's Algorithm 1 (Re-Randomize).

    The TLS canary [C] is a 64-bit secret fixed for the life of a
    process tree. P-SSP never changes [C]; instead it derives fresh
    {e shadow pairs} [(C0, C1)] with [C0 xor C1 = C]. Exposing either
    half alone leaks nothing about [C] (Theorem 1), which is the whole
    defence against byte-by-byte accumulation. *)

type pair = { c0 : int64; c1 : int64 }

val re_randomize : Util.Prng.t -> int64 -> pair
(** Algorithm 1: [re_randomize rng c] draws a fresh random [c0] and
    returns [{c0; c1 = c0 xor c}], so [c0 xor c1 = c]. *)

val combine : pair -> int64
(** [combine p] is [p.c0 xor p.c1] — what a correct epilogue recomputes. *)

val checks_out : tls_canary:int64 -> pair -> bool
(** The epilogue predicate: does the stack pair still XOR to [C]? *)

val re_randomize_packed32 : Util.Prng.t -> int64 -> int64
(** The §V-C binary-instrumentation variant: canaries are downgraded to
    32 bits so the SSP stack layout is preserved. Returns a single
    64-bit word holding [C1 (high 32) || C0 (low 32)] with
    [C0 xor C1 = low32 C]. *)

val packed32_checks_out : tls_canary:int64 -> int64 -> bool
(** Check a packed 32-bit pair word against the low half of [C] —
    the logic inserted into [__stack_chk_fail] (Fig. 4). *)

val packed32_parts : int64 -> int64 * int64
(** [(c0, c1)] halves of a packed word, zero-extended. *)

val pack32 : c0:int64 -> c1:int64 -> int64
(** Inverse of {!packed32_parts} (low 32 bits of each half are used). *)

val split_chain : Util.Prng.t -> int64 -> n:int -> int64 list
(** P-SSP-LV (Algorithm 2) canary generation: [n] canaries whose XOR is
    exactly the TLS canary [c]. The first [n-1] are independently
    random; the last is computed. [n >= 1].
    Raises [Invalid_argument] if [n < 1]. *)

val chain_checks_out : tls_canary:int64 -> int64 list -> bool
(** Collective consistency check of a P-SSP-LV frame. *)
