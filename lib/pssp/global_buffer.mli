(** The §VII-C alternative that preserves 64-bit canary entropy without
    widening the stack slot: only [C0] goes on the stack; the matching
    [C1] is pushed into a per-thread global buffer that [fork] clones
    along with the rest of the address space.

    This module models the buffer discipline (push on prologue, pop on
    epilogue, clone on fork) and is exercised by the ablation bench
    comparing it against the 32-bit-downgrade approach of §V-C. *)

type t

val create : unit -> t

val depth : t -> int

val push_frame : t -> Util.Prng.t -> tls_canary:int64 -> int64
(** Generate a fresh pair for a new frame: stores [C1] in the buffer and
    returns the [C0] that goes on the stack. *)

val check_and_pop : t -> tls_canary:int64 -> stack_c0:int64 -> bool
(** Epilogue: pop the buffered [C1] and verify [C0 xor C1 = C]. Returns
    [false] (after popping) on mismatch — i.e. smashing detected.
    Raises [Invalid_argument] on an empty buffer (frame imbalance is a
    program bug, not an attack signal). *)

val clone : t -> t
(** Fork semantics: the child inherits its parent's buffered halves, so
    returns into inherited frames still verify. *)
