(** Typed access to the canary slots of a simulated thread's TLS block.

    Offsets follow the paper (§V-A): [%fs:0x28] holds the classic canary
    [C]; [%fs:0x2a8]–[%fs:0x2b7] hold the P-SSP shadow pair [(C0, C1)].
    The packed 32-bit form used by binary instrumentation lives in the
    single word at [%fs:0x2a8]. *)

val canary : Vm64.Memory.t -> fs_base:int64 -> int64
val set_canary : Vm64.Memory.t -> fs_base:int64 -> int64 -> unit

val shadow_pair : Vm64.Memory.t -> fs_base:int64 -> Canary.pair
val set_shadow_pair : Vm64.Memory.t -> fs_base:int64 -> Canary.pair -> unit

val shadow_sp : Vm64.Memory.t -> fs_base:int64 -> int64
(** The compact shadow stack's pointer at [%fs:0x2c0] (shadow-compact
    processes only; 0 elsewhere). *)

val set_shadow_sp : Vm64.Memory.t -> fs_base:int64 -> int64 -> unit

val shadow_packed : Vm64.Memory.t -> fs_base:int64 -> int64
val set_shadow_packed : Vm64.Memory.t -> fs_base:int64 -> int64 -> unit

val install_fresh_canary : Util.Prng.t -> Vm64.Memory.t -> fs_base:int64 -> int64
(** Draw a fresh [C], store it at [%fs:0x28], and return it — program
    startup behaviour of the dynamic loader. *)
