type t =
  | None_
  | Ssp
  | Raf_ssp
  | Dynaguard
  | Dcr
  | Pssp
  | Pssp_nt
  | Pssp_lv of int
  | Pssp_owf
  | Pssp_owf_weak
  | Pssp_gb
  | Shadow_compact
  | Shadow_parallel
  | Pac_canary
  | Wasm_ssp

let name = function
  | None_ -> "none"
  | Ssp -> "ssp"
  | Raf_ssp -> "raf-ssp"
  | Dynaguard -> "dynaguard"
  | Dcr -> "dcr"
  | Pssp -> "pssp"
  | Pssp_nt -> "pssp-nt"
  | Pssp_lv n -> Printf.sprintf "pssp-lv%d" n
  | Pssp_owf -> "pssp-owf"
  | Pssp_owf_weak -> "pssp-owf-weak"
  | Pssp_gb -> "pssp-gb"
  | Shadow_compact -> "shadow-compact"
  | Shadow_parallel -> "shadow-parallel"
  | Pac_canary -> "pac-canary"
  | Wasm_ssp -> "wasm-ssp"

let title = function
  | None_ -> "Native"
  | Ssp -> "SSP"
  | Raf_ssp -> "RAF SSP"
  | Dynaguard -> "DynaGuard"
  | Dcr -> "DCR"
  | Pssp -> "P-SSP"
  | Pssp_nt -> "P-SSP-NT"
  | Pssp_lv n -> Printf.sprintf "P-SSP-LV (%d variables)" n
  | Pssp_owf -> "P-SSP-OWF"
  | Pssp_owf_weak -> "P-SSP-OWF (no nonce, ablation)"
  | Pssp_gb -> "P-SSP-GB (global buffer, SVII-C)"
  | Shadow_compact -> "Shadow stack (compact)"
  | Shadow_parallel -> "Shadow stack (parallel)"
  | Pac_canary -> "PAC canary"
  | Wasm_ssp -> "Wasm SSP (no-trap)"

let of_name s =
  match s with
  | "none" -> Some None_
  | "ssp" -> Some Ssp
  | "raf-ssp" -> Some Raf_ssp
  | "dynaguard" -> Some Dynaguard
  | "dcr" -> Some Dcr
  | "pssp" -> Some Pssp
  | "pssp-nt" -> Some Pssp_nt
  | "pssp-owf" -> Some Pssp_owf
  | "pssp-owf-weak" -> Some Pssp_owf_weak
  | "pssp-gb" -> Some Pssp_gb
  | "shadow-compact" -> Some Shadow_compact
  | "shadow-parallel" -> Some Shadow_parallel
  | "pac-canary" -> Some Pac_canary
  | "wasm-ssp" -> Some Wasm_ssp
  | _ ->
    if String.length s > 7 && String.sub s 0 7 = "pssp-lv" then
      match int_of_string_opt (String.sub s 7 (String.length s - 7)) with
      | Some n when n >= 1 -> Some (Pssp_lv n)
      | Some _ | None -> None
    else None

let all_basic = [ None_; Ssp; Raf_ssp; Dynaguard; Dcr; Pssp ]
let all_extensions = [ Pssp_nt; Pssp_lv 2; Pssp_lv 4; Pssp_owf ]
let all_families = [ Shadow_compact; Shadow_parallel; Pac_canary; Wasm_ssp ]

let prevents_brop = function
  | None_ | Ssp | Pssp_owf_weak | Wasm_ssp -> false
  | Raf_ssp | Dynaguard | Dcr | Pssp | Pssp_nt | Pssp_lv _ | Pssp_owf | Pssp_gb
  | Shadow_compact | Shadow_parallel | Pac_canary -> true

let preserves_correctness = function
  | Raf_ssp -> false
  | None_ | Ssp | Dynaguard | Dcr | Pssp | Pssp_nt | Pssp_lv _ | Pssp_owf
  | Pssp_owf_weak | Pssp_gb | Shadow_compact | Shadow_parallel | Pac_canary
  | Wasm_ssp -> true

let stack_words = function
  | None_ -> 0
  | Shadow_compact | Shadow_parallel -> 0 (* guard lives off-frame *)
  | Ssp | Raf_ssp | Dynaguard | Dcr | Pssp_gb | Pac_canary | Wasm_ssp -> 1
  | Pssp | Pssp_nt -> 2
  | Pssp_lv _ -> 2 (* return-address guard; per-variable canaries are extra *)
  | Pssp_owf | Pssp_owf_weak -> 3 (* nonce + 128-bit ciphertext *)

let equal a b =
  match (a, b) with
  | Pssp_lv n, Pssp_lv m -> n = m
  | _ -> a = b

let pp fmt t = Format.pp_print_string fmt (title t)
