type t = { mutable halves : int64 list }

let create () = { halves = [] }

let depth t = List.length t.halves

let push_frame t rng ~tls_canary =
  let p = Canary.re_randomize rng tls_canary in
  t.halves <- p.Canary.c1 :: t.halves;
  p.Canary.c0

let check_and_pop t ~tls_canary ~stack_c0 =
  match t.halves with
  | [] -> invalid_arg "Global_buffer.check_and_pop: empty buffer"
  | c1 :: rest ->
    t.halves <- rest;
    Canary.checks_out ~tls_canary { Canary.c0 = stack_c0; c1 }

let clone t = { halves = t.halves }
