open Vm64

let canary_addr fs_base = Int64.add fs_base Layout.tls_canary_offset
let shadow_addr fs_base = Int64.add fs_base Layout.tls_shadow_offset
let shadow_addr_hi fs_base = Int64.add fs_base Layout.tls_shadow_offset_hi

let canary mem ~fs_base = Memory.read_u64 mem (canary_addr fs_base)
let set_canary mem ~fs_base v = Memory.write_u64 mem (canary_addr fs_base) v

let shadow_pair mem ~fs_base =
  {
    Canary.c0 = Memory.read_u64 mem (shadow_addr fs_base);
    c1 = Memory.read_u64 mem (shadow_addr_hi fs_base);
  }

let set_shadow_pair mem ~fs_base (p : Canary.pair) =
  Memory.write_u64 mem (shadow_addr fs_base) p.c0;
  Memory.write_u64 mem (shadow_addr_hi fs_base) p.c1

let shadow_sp_addr fs_base = Int64.add fs_base Layout.tls_shadow_sp_offset

let shadow_sp mem ~fs_base = Memory.read_u64 mem (shadow_sp_addr fs_base)

let set_shadow_sp mem ~fs_base v =
  Memory.write_u64 mem (shadow_sp_addr fs_base) v

let shadow_packed mem ~fs_base = Memory.read_u64 mem (shadow_addr fs_base)

let set_shadow_packed mem ~fs_base w =
  Memory.write_u64 mem (shadow_addr fs_base) w

let install_fresh_canary rng mem ~fs_base =
  let c = Util.Prng.next64 rng in
  set_canary mem ~fs_base c;
  c
