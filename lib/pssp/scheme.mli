(** The protection schemes this repository implements and compares.

    The paper's contribution (P-SSP and its three extensions) plus every
    baseline it evaluates against (Table I). *)

type t =
  | None_  (** no stack protection *)
  | Ssp  (** classic Stack Smashing Protection (Code 1/2) *)
  | Raf_ssp
      (** renew-after-fork (Marco-Gisbert & Ripoll): TLS canary itself is
          refreshed on fork — prevents BROP but breaks correctness *)
  | Dynaguard
      (** Petsios et al.: TLS canary refreshed on fork, plus a canary
          address buffer so all live stack canaries are rewritten *)
  | Dcr
      (** Hawkins et al.: like DynaGuard, but the linked list lives in
          the canaries themselves via embedded offsets *)
  | Pssp  (** the basic scheme (§III): per-fork shadow pair (C0, C1) *)
  | Pssp_nt  (** §IV-A: per-call rdrand split, no TLS update *)
  | Pssp_lv of int
      (** §IV-B: local-variable protection with the given number of
          protected critical variables (>= 1) *)
  | Pssp_owf  (** §IV-C: AES-based one-way-function canaries *)
  | Pssp_owf_weak
      (** ablation only: P-SSP-OWF with the nonce pinned to zero —
          reproduces the §IV-C warning that without a nonce the canary
          of a call site is fixed across executions and the byte-by-byte
          attack applies again *)
  | Pssp_gb
      (** §VII-C: the global-buffer alternative — only C0 goes on the
          stack (preserving the SSP layout and the full 64-bit entropy);
          the matching C1 lives in a per-process buffer that fork clones
          with the address space *)
  | Shadow_compact
      (** shadow stack, compact variant (Burow et al.'s SoK): the
          prologue pushes the return address onto a separate
          return-address stack with its own pointer ([%fs:0x2c0]); the
          epilogue pops and compares. No canary word on the frame. *)
  | Shadow_parallel
      (** shadow stack, parallel variant: each return-address slot is
          mirrored at a fixed offset below the stack
          ({!Vm64.Layout.shadow_parallel_delta}); no separate pointer. *)
  | Pac_canary
      (** PACed canary (Liljestrand et al.): the prologue draws a fresh
          random canary and signs it with the [pac] instruction under
          the per-process key, bound to the frame address; the epilogue
          authenticates with [aut]. A disclosed canary does not replay
          across forks (fresh draw per call) or frames (MAC binds the
          address). *)
  | Wasm_ssp
      (** Wasm-flavoured SSP (Michaud): identical canary check, but the
          process models linear-memory semantics — out-of-frame writes
          land silently instead of trapping, so an overflow is detected
          only when the epilogue check runs. *)

val name : t -> string
(** Short machine-friendly name, e.g. ["pssp-nt"], ["pssp-lv2"]. *)

val title : t -> string
(** Human-readable name as used in the paper's tables. *)

val of_name : string -> t option

val all_basic : t list
(** The schemes of Table I plus P-SSP: [None_; Ssp; Raf_ssp; Dynaguard;
    Dcr; Pssp]. *)

val all_extensions : t list
(** [Pssp_nt; Pssp_lv 2; Pssp_lv 4; Pssp_owf] — the Table V set. *)

val all_families : t list
(** The beyond-the-paper defense families: [Shadow_compact;
    Shadow_parallel; Pac_canary; Wasm_ssp]. *)

val prevents_brop : t -> bool
(** The "BROP Prevention" column of Table I (expected values; the
    benchmark harness verifies them experimentally). *)

val preserves_correctness : t -> bool
(** The "Correctness" column of Table I (expected values). *)

val stack_words : t -> int
(** Canary words each protected frame carries above the locals (the
    return-address guard only; P-SSP-LV adds more per variable). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
