type pair = { c0 : int64; c1 : int64 }

let re_randomize rng c =
  let c0 = Util.Prng.next64 rng in
  { c0; c1 = Int64.logxor c0 c }

let combine p = Int64.logxor p.c0 p.c1

let checks_out ~tls_canary p = Int64.equal (combine p) tls_canary

let low32 v = Int64.logand v 0xFFFFFFFFL

let pack32 ~c0 ~c1 = Int64.logor (low32 c0) (Int64.shift_left (low32 c1) 32)

let packed32_parts w = (low32 w, Int64.shift_right_logical w 32)

let re_randomize_packed32 rng c =
  let c0 = low32 (Util.Prng.next64 rng) in
  let c1 = Int64.logxor c0 (low32 c) in
  pack32 ~c0 ~c1

let packed32_checks_out ~tls_canary w =
  let c0, c1 = packed32_parts w in
  Int64.equal (Int64.logxor c0 c1) (low32 tls_canary)

let split_chain rng c ~n =
  if n < 1 then invalid_arg "Canary.split_chain: n must be >= 1";
  let rec build i acc_xor acc =
    if i = n - 1 then List.rev (Int64.logxor c acc_xor :: acc)
    else begin
      let v = Util.Prng.next64 rng in
      build (i + 1) (Int64.logxor acc_xor v) (v :: acc)
    end
  in
  build 0 0L []

let chain_checks_out ~tls_canary canaries =
  Int64.equal (List.fold_left Int64.logxor 0L canaries) tls_canary
