exception Error of int * string

let fail line fmt = Printf.ksprintf (fun s -> raise (Error (line, s))) fmt

(* ---- token-level helpers ------------------------------------------------- *)

let strip s = String.trim s

let split_mnemonic s =
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i ->
    (String.sub s 0 i, strip (String.sub s i (String.length s - i)))

(* Split the operand field at top-level commas (commas inside parens
   belong to memory operands). *)
let split_operands s =
  if strip s = "" then []
  else begin
    let parts = ref [] in
    let buf = Buffer.create 16 in
    let depth = ref 0 in
    String.iter
      (fun c ->
        match c with
        | '(' ->
          incr depth;
          Buffer.add_char buf c
        | ')' ->
          decr depth;
          Buffer.add_char buf c
        | ',' when !depth = 0 ->
          parts := Buffer.contents buf :: !parts;
          Buffer.clear buf
        | c -> Buffer.add_char buf c)
      s;
    parts := Buffer.contents buf :: !parts;
    List.rev_map strip !parts
  end

let parse_int64 line s =
  let s = strip s in
  let negative = String.length s > 0 && s.[0] = '-' in
  let body = if negative then String.sub s 1 (String.length s - 1) else s in
  match Int64.of_string_opt body with
  | Some v -> if negative then Int64.neg v else v
  | None -> fail line "bad integer %S" s

let parse_gpr line s =
  let s = strip s in
  if String.length s < 2 || s.[0] <> '%' then fail line "expected register, got %S" s;
  let name = String.sub s 1 (String.length s - 1) in
  match List.find_opt (fun r -> Reg.name r = name) Reg.all with
  | Some r -> r
  | None -> fail line "unknown register %%%s" name

let is_xmm s =
  String.length s > 4 && String.sub s 0 4 = "%xmm"

let parse_xmm line s =
  let s = strip s in
  if not (is_xmm s) then fail line "expected xmm register, got %S" s;
  match int_of_string_opt (String.sub s 4 (String.length s - 4)) with
  | Some i when i >= 0 && i <= 15 -> Reg.Xmm.of_index_exn i
  | _ -> fail line "bad xmm register %S" s

(* memory operand: [%fs:]disp | [%fs:][disp](base[,index,scale]) *)
let parse_mem line s =
  let s = strip s in
  let seg_fs, s =
    if String.length s > 4 && String.sub s 0 4 = "%fs:" then
      (true, String.sub s 4 (String.length s - 4))
    else (false, s)
  in
  match String.index_opt s '(' with
  | None -> { Operand.seg_fs; base = None; index = None; disp = parse_int64 line s }
  | Some lp ->
    let disp_str = String.sub s 0 lp in
    let disp = if strip disp_str = "" then 0L else parse_int64 line disp_str in
    let rp =
      match String.index_opt s ')' with
      | Some i -> i
      | None -> fail line "unterminated memory operand %S" s
    in
    let inner = String.sub s (lp + 1) (rp - lp - 1) in
    (match String.split_on_char ',' inner with
    | [ base ] ->
      { Operand.seg_fs; base = Some (parse_gpr line base); index = None; disp }
    | [ base; index; scale ] ->
      let scale =
        match Operand.scale_of_factor (Int64.to_int (parse_int64 line scale)) with
        | Some sc -> sc
        | None -> fail line "bad scale in %S" s
      in
      let base = if strip base = "" then None else Some (parse_gpr line base) in
      { Operand.seg_fs; base; index = Some (parse_gpr line index, scale); disp }
    | _ -> fail line "bad memory operand %S" s)

let is_fs_prefixed s = String.length s > 4 && String.sub s 0 4 = "%fs:"

let parse_operand line s =
  let s = strip s in
  if s = "" then fail line "empty operand"
  else if s.[0] = '$' then
    Operand.Imm (parse_int64 line (String.sub s 1 (String.length s - 1)))
  else if s.[0] = '%' && (not (is_xmm s)) && not (is_fs_prefixed s) then
    Operand.Reg (parse_gpr line s)
  else Operand.Mem (parse_mem line s)

let parse_target line s =
  let s = strip s in
  if String.length s >= 2 && s.[0] = '<' && s.[String.length s - 1] = '>' then
    Insn.Sym (String.sub s 1 (String.length s - 2))
  else Insn.Abs (parse_int64 line s)

let cond_of_suffix line suffix =
  match
    List.find_opt
      (fun c -> Insn.cond_name c = suffix)
      [ Insn.E; NE; L; LE; G; GE; B; BE; A; AE; S; NS ]
  with
  | Some c -> c
  | None -> fail line "unknown condition %S" suffix

(* ---- instruction dispatch ------------------------------------------------- *)

let parse_insn_at line text =
  let text = strip text in
  let mnemonic, rest = split_mnemonic text in
  let ops () = split_operands rest in
  let binop op =
    match ops () with
    | [ src; dst ] -> Insn.Bin (op, parse_operand line dst, parse_operand line src)
    | _ -> fail line "%s expects two operands" mnemonic
  in
  let shift op =
    match ops () with
    | [ amount; dst ] -> (
      match parse_operand line amount with
      | Operand.Imm k -> Insn.Shift (op, parse_operand line dst, Int64.to_int k)
      | _ -> fail line "%s expects an immediate amount" mnemonic)
    | _ -> fail line "%s expects two operands" mnemonic
  in
  match mnemonic with
  | "nop" -> Insn.Nop
  | "retq" | "ret" -> Insn.Ret
  | "leaveq" | "leave" -> Insn.Leave
  | "hlt" -> Insn.Hlt
  | "rdtsc" -> Insn.Rdtsc
  | "syscall" -> Insn.Syscall
  | "rdrand" -> (
    match ops () with
    | [ r ] -> Insn.Rdrand (parse_gpr line r)
    | _ -> fail line "rdrand expects one register")
  | "pac" | "aut" -> (
    (* AT&T order modifier,dst *)
    match ops () with
    | [ m; d ] ->
      let d = parse_gpr line d and m = parse_gpr line m in
      if mnemonic = "pac" then Insn.Pac (d, m) else Insn.Aut (d, m)
    | _ -> fail line "%s expects two registers" mnemonic)
  | "mov" | "movq" -> (
    (* AT&T order src,dst; movq additionally covers the GPR<->XMM and
       XMM-store forms *)
    match ops () with
    | [ src; dst ] -> (
      let xmm_src = is_xmm (strip src) and xmm_dst = is_xmm (strip dst) in
      match (xmm_src, xmm_dst) with
      | false, false -> Insn.Mov (parse_operand line dst, parse_operand line src)
      | false, true -> (
        match parse_operand line src with
        | Operand.Reg r -> Insn.Movq_to_xmm (parse_xmm line dst, r)
        | _ -> fail line "movq to xmm expects a register source")
      | true, false -> (
        match parse_operand line dst with
        | Operand.Reg r -> Insn.Movq_from_xmm (r, parse_xmm line src)
        | Operand.Mem m -> Insn.Movq_store (m, parse_xmm line src)
        | Operand.Imm _ -> fail line "movq from xmm to immediate")
      | true, true -> fail line "movq xmm,xmm unsupported")
    | _ -> fail line "mov expects two operands")
  | "movb" -> (
    match ops () with
    | [ src; dst ] -> Insn.Movb (parse_operand line dst, parse_operand line src)
    | _ -> fail line "movb expects two operands")
  | "movl" -> (
    match ops () with
    | [ src; dst ] -> Insn.Movl (parse_operand line dst, parse_operand line src)
    | _ -> fail line "movl expects two operands")
  | "lea" -> (
    match ops () with
    | [ src; dst ] -> Insn.Lea (parse_gpr line dst, parse_mem line src)
    | _ -> fail line "lea expects two operands")
  | "push" -> (
    match ops () with
    | [ op ] -> Insn.Push (parse_operand line op)
    | _ -> fail line "push expects one operand")
  | "pop" -> (
    match ops () with
    | [ op ] -> Insn.Pop (parse_operand line op)
    | _ -> fail line "pop expects one operand")
  | "add" -> binop Insn.Add
  | "sub" -> binop Insn.Sub
  | "xor" -> binop Insn.Xor
  | "and" -> binop Insn.And
  | "or" -> binop Insn.Or
  | "cmp" -> binop Insn.Cmp
  | "test" -> binop Insn.Test
  | "imul" -> binop Insn.Imul
  | "idiv" -> binop Insn.Idiv
  | "irem" -> binop Insn.Irem
  | "shl" -> shift Insn.Shl
  | "shr" -> shift Insn.Shr
  | "sar" -> shift Insn.Sar
  | "neg" -> (
    match ops () with
    | [ op ] -> Insn.Neg (parse_operand line op)
    | _ -> fail line "neg expects one operand")
  | "not" -> (
    match ops () with
    | [ op ] -> Insn.Not (parse_operand line op)
    | _ -> fail line "not expects one operand")
  | "jmp" -> Insn.Jmp (parse_target line rest)
  | "callq" | "call" ->
    let rest = strip rest in
    if String.length rest > 0 && rest.[0] = '*' then
      Insn.Call_ind (parse_operand line (String.sub rest 1 (String.length rest - 1)))
    else Insn.Call (parse_target line rest)
  | "pinsrq" -> (
    match ops () with
    | [ _one; src; dst ] -> Insn.Pinsrq_high (parse_xmm line dst, parse_gpr line src)
    | _ -> fail line "pinsrq expects three operands")
  | "movhps" -> (
    match ops () with
    | [ src; dst ] -> Insn.Movhps_load (parse_xmm line dst, parse_mem line src)
    | _ -> fail line "movhps expects two operands")
  | "movdqu" -> (
    match ops () with
    | [ src; dst ] ->
      if is_xmm (strip src) then
        Insn.Movdqu_store (parse_mem line dst, parse_xmm line src)
      else Insn.Movdqu_load (parse_xmm line dst, parse_mem line src)
    | _ -> fail line "movdqu expects two operands")
  | "aesenc" -> (
    match ops () with
    | [ src; dst ] -> Insn.Aesenc (parse_xmm line dst, parse_xmm line src)
    | _ -> fail line "aesenc expects two operands")
  | "aesenclast" -> (
    match ops () with
    | [ src; dst ] -> Insn.Aesenclast (parse_xmm line dst, parse_xmm line src)
    | _ -> fail line "aesenclast expects two operands")
  | "pcmpeq128" -> (
    match ops () with
    | [ src; dst ] -> Insn.Pcmpeq128 (parse_xmm line dst, parse_mem line src)
    | _ -> fail line "pcmpeq128 expects two operands")
  | m when String.length m > 3 && String.sub m 0 3 = "set" ->
    let cond = cond_of_suffix line (String.sub m 3 (String.length m - 3)) in
    (match ops () with
    | [ r ] -> Insn.Setcc (cond, parse_gpr line r)
    | _ -> fail line "%s expects one register" m)
  | m when String.length m > 1 && m.[0] = 'j' ->
    let cond = cond_of_suffix line (String.sub m 1 (String.length m - 1)) in
    Insn.Jcc (cond, parse_target line rest)
  | m -> fail line "unknown mnemonic %S" m

let parse_insn text = parse_insn_at 1 text

let strip_comment s =
  match String.index_opt s '#' with
  | Some i -> String.sub s 0 i
  | None -> s

let parse_listing text =
  let lines = String.split_on_char '\n' text in
  List.concat
    (List.mapi
       (fun idx raw ->
         let lineno = idx + 1 in
         let s = strip (strip_comment raw) in
         if s = "" then []
         else if s.[String.length s - 1] = ':' then
           [ `Label (strip (String.sub s 0 (String.length s - 1))) ]
         else [ `Insn (parse_insn_at lineno s) ])
       lines)

let to_builder text =
  let b = Builder.create () in
  List.iter
    (function
      | `Label name -> Builder.label b name
      | `Insn insn -> Builder.emit b insn)
    (parse_listing text);
  b
