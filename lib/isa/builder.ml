type item = Label of string | Instruction of Insn.t | Sym_imm_mov of Reg.t * string

type t = {
  mutable items : item list; (* reversed *)
  mutable counter : int;
  placed : (string, unit) Hashtbl.t;
}

let create () = { items = []; counter = 0; placed = Hashtbl.create 16 }

let items t = List.rev t.items

let of_items items =
  let t = create () in
  List.iter
    (fun item ->
      (match item with
      | Label name -> Hashtbl.add t.placed name ()
      | Instruction _ | Sym_imm_mov _ -> ());
      t.items <- item :: t.items)
    items;
  t

let emit t insn = t.items <- Instruction insn :: t.items
let emit_all t insns = List.iter (emit t) insns
let emit_mov_sym t r sym = t.items <- Sym_imm_mov (r, sym) :: t.items

(* layout width of a symbol-immediate mov: identical for any address *)
let sym_imm_width r = Encode.length (Insn.Mov (Operand.Reg r, Operand.Imm 0L))

let fresh_label t hint =
  t.counter <- t.counter + 1;
  Printf.sprintf ".L%s%d" hint t.counter

let label t name =
  if Hashtbl.mem t.placed name then
    invalid_arg (Printf.sprintf "Builder.label: %s placed twice" name);
  Hashtbl.add t.placed name ();
  t.items <- Label name :: t.items

type assembled = {
  code : bytes;
  insns : (int * Insn.t) list;
  labels : (string * int) list;
}

let layout items =
  (* First pass: compute each instruction's offset and label positions. *)
  let offsets = Hashtbl.create 16 in
  let off = ref 0 in
  let positioned =
    List.filter_map
      (fun item ->
        match item with
        | Label name ->
          Hashtbl.replace offsets name !off;
          None
        | Instruction insn ->
          let at = !off in
          off := !off + Encode.length insn;
          Some (at, `Insn insn)
        | Sym_imm_mov (r, sym) ->
          let at = !off in
          off := !off + sym_imm_width r;
          Some (at, `Sym_imm (r, sym)))
      items
  in
  (positioned, offsets)

let assemble t ~base ~externs =
  let items = List.rev t.items in
  let positioned, offsets = layout items in
  let resolve_symbol s =
    match Hashtbl.find_opt offsets s with
    | Some off -> Int64.add base (Int64.of_int off)
    | None -> (
      match externs s with
      | Some addr -> addr
      | None -> invalid_arg (Printf.sprintf "Builder.assemble: undefined symbol %s" s))
  in
  let insns =
    List.map
      (fun (off, item) ->
        match item with
        | `Insn insn -> (off, Insn.resolve resolve_symbol insn)
        | `Sym_imm (r, sym) ->
          (off, Insn.Mov (Operand.Reg r, Operand.Imm (resolve_symbol sym))))
      positioned
  in
  let buf = Buffer.create 512 in
  List.iter (fun (_, insn) -> Encode.encode buf insn) insns;
  let labels = Hashtbl.fold (fun name off acc -> (name, off) :: acc) offsets [] in
  let labels = List.sort (fun (_, a) (_, b) -> compare a b) labels in
  { code = Buffer.to_bytes buf; insns; labels }

let size t =
  let items = List.rev t.items in
  List.fold_left
    (fun acc item ->
      match item with
      | Label _ -> acc
      | Instruction insn -> acc + Encode.length insn
      | Sym_imm_mov (r, _) -> acc + sym_imm_width r)
    0 items
