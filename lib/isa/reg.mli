(** General-purpose and XMM registers of the simulated x86-64-like CPU. *)

type t =
  | RAX | RBX | RCX | RDX | RSI | RDI | RBP | RSP
  | R8 | R9 | R10 | R11 | R12 | R13 | R14 | R15

val index : t -> int
(** Stable 0..15 index, used by the binary encoding and the CPU file. *)

val of_index : int -> t option
val of_index_exn : int -> t

val name : t -> string
(** AT&T-style name without the [%], e.g. ["rax"]. *)

val all : t list

val arg_registers : t list
(** SysV integer argument registers, in order: rdi rsi rdx rcx r8 r9. *)

val callee_saved : t list
(** rbx rbp r12 r13 r14 r15 — the set a callee must preserve.  P-SSP-OWF
    relies on r12/r13 being here (§V-E3). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** 128-bit XMM registers (only a handful are used, by P-SSP-OWF). *)
module Xmm : sig
  type t

  val of_index : int -> t option
  val of_index_exn : int -> t
  val index : t -> int
  val name : t -> string
  val equal : t -> t -> bool

  val xmm0 : t
  val xmm1 : t
  val xmm15 : t
end
