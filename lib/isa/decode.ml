exception Bad_encoding of int * string

let fail off msg = raise (Bad_encoding (off, msg))

type cursor = { code : bytes; mutable pos : int }

let u8 c =
  if c.pos >= Bytes.length c.code then fail c.pos "truncated";
  let v = Char.code (Bytes.get c.code c.pos) in
  c.pos <- c.pos + 1;
  v

let i32 c =
  if c.pos + 4 > Bytes.length c.code then fail c.pos "truncated i32";
  let v = Bytes.get_int32_le c.code c.pos in
  c.pos <- c.pos + 4;
  Int64.of_int32 v

let i64 c =
  if c.pos + 8 > Bytes.length c.code then fail c.pos "truncated i64";
  let v = Bytes.get_int64_le c.code c.pos in
  c.pos <- c.pos + 8;
  v

let reg c =
  let i = u8 c in
  match Reg.of_index i with
  | Some r -> r
  | None -> fail (c.pos - 1) (Printf.sprintf "bad register index %d" i)

let xmm c =
  let i = u8 c in
  match Reg.Xmm.of_index i with
  | Some x -> x
  | None -> fail (c.pos - 1) (Printf.sprintf "bad xmm index %d" i)

let scale_of_bits pos = function
  | 0 -> Operand.S1
  | 1 -> Operand.S2
  | 2 -> Operand.S4
  | 3 -> Operand.S8
  | n -> fail pos (Printf.sprintf "bad scale bits %d" n)

let mem c : Operand.mem =
  let flags = u8 c in
  let seg_fs = flags land 1 <> 0 in
  let base = if flags land 2 <> 0 then Some (reg c) else None in
  let index =
    if flags land 4 <> 0 then begin
      let r = reg c in
      Some (r, scale_of_bits c.pos ((flags lsr 4) land 3))
    end
    else None
  in
  let disp = i32 c in
  { seg_fs; base; index; disp }

let operand c =
  match u8 c with
  | 0x00 -> Operand.Reg (reg c)
  | 0x01 -> Operand.Imm (i64 c)
  | 0x02 -> Operand.Mem (mem c)
  | tag -> fail (c.pos - 1) (Printf.sprintf "bad operand tag 0x%02x" tag)

let target c = Insn.Abs (i64 c)

let cond c =
  let i = u8 c in
  match Insn.cond_of_index i with
  | Some cd -> cd
  | None -> fail (c.pos - 1) (Printf.sprintf "bad condition index %d" i)

let decode code off =
  let c = { code; pos = off } in
  let op = u8 c in
  let insn =
    match op with
    | 0x00 -> Insn.Nop
    | 0x01 ->
      let dst = operand c in
      let src = operand c in
      Insn.Mov (dst, src)
    | 0x02 ->
      let dst = operand c in
      let src = operand c in
      Insn.Movb (dst, src)
    | 0x03 ->
      let dst = operand c in
      let src = operand c in
      Insn.Movl (dst, src)
    | 0x04 ->
      let r = reg c in
      let m = mem c in
      Insn.Lea (r, m)
    | 0x05 -> Insn.Push (operand c)
    | 0x06 -> Insn.Pop (operand c)
    | n when n >= 0x10 && n <= 0x19 ->
      let bop =
        match Insn.binop_of_index (n - 0x10) with
        | Some b -> b
        | None -> assert false
      in
      let dst = operand c in
      let src = operand c in
      Insn.Bin (bop, dst, src)
    | n when n >= 0x20 && n <= 0x22 ->
      let sop =
        match Insn.shiftop_of_index (n - 0x20) with
        | Some s -> s
        | None -> assert false
      in
      let dst = operand c in
      let k = u8 c in
      Insn.Shift (sop, dst, k)
    | 0x28 -> Insn.Neg (operand c)
    | 0x29 -> Insn.Not (operand c)
    | 0x30 -> Insn.Jmp (target c)
    | 0x31 ->
      let cd = cond c in
      Insn.Jcc (cd, target c)
    | 0x32 -> Insn.Call (target c)
    | 0x33 -> Insn.Call_ind (operand c)
    | 0x34 -> Insn.Ret
    | 0x35 -> Insn.Leave
    | 0x36 ->
      let cd = cond c in
      Insn.Setcc (cd, reg c)
    | 0x40 -> Insn.Rdrand (reg c)
    | 0x41 -> Insn.Rdtsc
    | 0x42 -> Insn.Syscall
    | 0x43 -> Insn.Hlt
    | 0x44 ->
      let d = reg c in
      Insn.Pac (d, reg c)
    | 0x45 ->
      let d = reg c in
      Insn.Aut (d, reg c)
    | 0x50 ->
      let x = xmm c in
      Insn.Movq_to_xmm (x, reg c)
    | 0x51 ->
      let r = reg c in
      Insn.Movq_from_xmm (r, xmm c)
    | 0x52 ->
      let x = xmm c in
      Insn.Pinsrq_high (x, reg c)
    | 0x53 ->
      let x = xmm c in
      Insn.Movhps_load (x, mem c)
    | 0x54 ->
      let x = xmm c in
      Insn.Movq_store (mem c, x)
    | 0x55 ->
      let x = xmm c in
      Insn.Movdqu_load (x, mem c)
    | 0x56 ->
      let x = xmm c in
      Insn.Movdqu_store (mem c, x)
    | 0x57 ->
      let dst = xmm c in
      Insn.Aesenc (dst, xmm c)
    | 0x58 ->
      let dst = xmm c in
      Insn.Aesenclast (dst, xmm c)
    | 0x59 ->
      let x = xmm c in
      Insn.Pcmpeq128 (x, mem c)
    | n -> fail off (Printf.sprintf "bad opcode 0x%02x" n)
  in
  (insn, c.pos - off)

let decode_all code =
  let n = Bytes.length code in
  let rec loop off acc =
    if off >= n then List.rev acc
    else begin
      let insn, len = decode code off in
      loop (off + len) ((off, insn) :: acc)
    end
  in
  loop 0 []
