(** Binary decoding — the disassembler used by the interpreter's fetch
    stage and by the binary rewriter's scanner. *)

exception Bad_encoding of int * string
(** [(offset, message)]: the byte stream is not a valid instruction. *)

val decode : bytes -> int -> Insn.t * int
(** [decode code off] decodes one instruction at byte offset [off] and
    returns it with its encoded length.
    Raises {!Bad_encoding} on malformed input or truncation. *)

val decode_all : bytes -> (int * Insn.t) list
(** Decode an entire code blob into [(offset, insn)] pairs.
    Raises {!Bad_encoding} on the first malformed instruction. *)
