exception Unresolved_symbol of string

let opcode = function
  | Insn.Nop -> 0x00
  | Mov _ -> 0x01
  | Movb _ -> 0x02
  | Movl _ -> 0x03
  | Lea _ -> 0x04
  | Push _ -> 0x05
  | Pop _ -> 0x06
  | Bin (op, _, _) -> 0x10 + Insn.binop_index op
  | Shift (op, _, _) -> 0x20 + Insn.shiftop_index op
  | Neg _ -> 0x28
  | Not _ -> 0x29
  | Jmp _ -> 0x30
  | Jcc _ -> 0x31
  | Call _ -> 0x32
  | Call_ind _ -> 0x33
  | Ret -> 0x34
  | Leave -> 0x35
  | Setcc _ -> 0x36
  | Rdrand _ -> 0x40
  | Rdtsc -> 0x41
  | Syscall -> 0x42
  | Hlt -> 0x43
  | Pac _ -> 0x44
  | Aut _ -> 0x45
  | Movq_to_xmm _ -> 0x50
  | Movq_from_xmm _ -> 0x51
  | Pinsrq_high _ -> 0x52
  | Movhps_load _ -> 0x53
  | Movq_store _ -> 0x54
  | Movdqu_load _ -> 0x55
  | Movdqu_store _ -> 0x56
  | Aesenc _ -> 0x57
  | Aesenclast _ -> 0x58
  | Pcmpeq128 _ -> 0x59

let add_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xFF))

let add_i32 buf (v : int64) =
  let v32 = Int64.to_int32 v in
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 v32;
  Buffer.add_bytes buf b

let add_i64 buf (v : int64) =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  Buffer.add_bytes buf b

let add_reg buf r = add_u8 buf (Reg.index r)
let add_xmm buf x = add_u8 buf (Reg.Xmm.index x)

let scale_index = function
  | Operand.S1 -> 0
  | Operand.S2 -> 1
  | Operand.S4 -> 2
  | Operand.S8 -> 3

let add_mem buf (m : Operand.mem) =
  let flags =
    (if m.seg_fs then 1 else 0)
    lor (if m.base <> None then 2 else 0)
    lor (if m.index <> None then 4 else 0)
    lor
    match m.index with
    | Some (_, s) -> scale_index s lsl 4
    | None -> 0
  in
  add_u8 buf flags;
  (match m.base with Some b -> add_reg buf b | None -> ());
  (match m.index with Some (r, _) -> add_reg buf r | None -> ());
  add_i32 buf m.disp

let add_operand buf = function
  | Operand.Reg r ->
    add_u8 buf 0x00;
    add_reg buf r
  | Operand.Imm v ->
    add_u8 buf 0x01;
    add_i64 buf v
  | Operand.Mem m ->
    add_u8 buf 0x02;
    add_mem buf m

let add_target buf = function
  | Insn.Abs a -> add_i64 buf a
  | Insn.Sym s -> raise (Unresolved_symbol s)

let encode buf insn =
  add_u8 buf (opcode insn);
  match insn with
  | Insn.Nop | Ret | Leave | Rdtsc | Syscall | Hlt -> ()
  | Mov (dst, src) | Movb (dst, src) | Movl (dst, src) ->
    add_operand buf dst;
    add_operand buf src
  | Lea (r, m) ->
    add_reg buf r;
    add_mem buf m
  | Push op | Pop op | Neg op | Not op | Call_ind op -> add_operand buf op
  | Bin (_, dst, src) ->
    add_operand buf dst;
    add_operand buf src
  | Shift (_, dst, k) ->
    add_operand buf dst;
    add_u8 buf k
  | Jmp t | Call t -> add_target buf t
  | Jcc (c, t) ->
    add_u8 buf (Insn.cond_index c);
    add_target buf t
  | Setcc (c, r) ->
    add_u8 buf (Insn.cond_index c);
    add_reg buf r
  | Rdrand r -> add_reg buf r
  | Pac (d, m) | Aut (d, m) ->
    add_reg buf d;
    add_reg buf m
  | Movq_to_xmm (x, r) | Pinsrq_high (x, r) ->
    add_xmm buf x;
    add_reg buf r
  | Movq_from_xmm (r, x) ->
    add_reg buf r;
    add_xmm buf x
  | Movhps_load (x, m) | Movdqu_load (x, m) | Pcmpeq128 (x, m) ->
    add_xmm buf x;
    add_mem buf m
  | Movq_store (m, x) | Movdqu_store (m, x) ->
    add_xmm buf x;
    add_mem buf m
  | Aesenc (dst, src) | Aesenclast (dst, src) ->
    add_xmm buf dst;
    add_xmm buf src

let to_bytes insn =
  let buf = Buffer.create 16 in
  encode buf insn;
  Buffer.to_bytes buf

let length insn =
  (* Symbols occupy the same width as resolved addresses, so measuring a
     dummy-resolved copy gives the true length. *)
  let resolved = Insn.resolve (fun _ -> 0L) insn in
  Bytes.length (to_bytes resolved)

let list_to_bytes insns =
  let buf = Buffer.create 256 in
  List.iter (encode buf) insns;
  Buffer.to_bytes buf
