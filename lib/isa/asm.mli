(** AT&T-flavoured pretty printer for instructions, so disassembly of
    simulated binaries reads like the listings in the paper. *)

val pp_target : Format.formatter -> Insn.target -> unit
val pp : Format.formatter -> Insn.t -> unit
val to_string : Insn.t -> string

val pp_listing :
  ?symbol_name:(int64 -> string option) ->
  Format.formatter ->
  (int64 * Insn.t) list ->
  unit
(** Print an address-annotated listing. [symbol_name] lets call targets
    render as [<name>]. *)
