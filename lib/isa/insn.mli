(** The instruction set of the simulated machine.

    A pragmatic x86-64 subset: everything the paper's Codes 1–9 emit
    (mov/push/xor/cmp/je/call/ret/leave, [rdrand], [rdtsc], the XMM and
    AES instructions of P-SSP-OWF) plus enough ALU/control flow for the
    Mini-C compiler to target. All GPR operations are 64-bit unless the
    mnemonic says otherwise ([Movb] = 8-bit, [Movl] = 32-bit
    zero-extending). *)

type target =
  | Sym of string  (** unresolved symbol; assembler-level only *)
  | Abs of int64  (** resolved absolute address *)

type cond = E | NE | L | LE | G | GE | B | BE | A | AE | S | NS

val cond_name : cond -> string
val cond_index : cond -> int
val cond_of_index : int -> cond option
val negate_cond : cond -> cond

type binop = Add | Sub | Xor | And | Or | Cmp | Test | Imul | Idiv | Irem

val binop_name : binop -> string
val binop_index : binop -> int
val binop_of_index : int -> binop option

type shiftop = Shl | Shr | Sar

val shiftop_name : shiftop -> string
val shiftop_index : shiftop -> int
val shiftop_of_index : int -> shiftop option

type t =
  | Nop
  | Mov of Operand.t * Operand.t  (** [Mov (dst, src)], 64-bit *)
  | Movb of Operand.t * Operand.t  (** 8-bit; reg destinations merge low byte *)
  | Movl of Operand.t * Operand.t  (** 32-bit; reg destinations zero-extend *)
  | Lea of Reg.t * Operand.mem
  | Push of Operand.t
  | Pop of Operand.t
  | Bin of binop * Operand.t * Operand.t  (** [dst op= src]; Cmp/Test only set flags *)
  | Shift of shiftop * Operand.t * int
  | Neg of Operand.t
  | Not of Operand.t
  | Jmp of target
  | Jcc of cond * target
  | Call of target
  | Call_ind of Operand.t
  | Ret
  | Leave  (** mov %rbp,%rsp; pop %rbp *)
  | Setcc of cond * Reg.t  (** reg := 1 if cond else 0 (whole register) *)
  | Rdrand of Reg.t  (** hardware entropy; sets CF=1 on success (always, here) *)
  | Rdtsc  (** cycle counter into rdx:rax *)
  | Pac of Reg.t * Reg.t
      (** [Pac (dst, modifier)]: replace dst's top 16 bits with the MAC
          of its low 48 bits and the modifier under the per-process
          {!Vm64.Cpu.t.pac_key} (AArch64 [pacga]-style, tag in the
          unused VA bits) *)
  | Aut of Reg.t * Reg.t
      (** [Aut (dst, modifier)]: authenticate dst's tag; sets ZF iff it
          is valid and strips the tag (dst := low 48 bits) *)
  | Syscall  (** number in rax; handled by the OS layer *)
  | Hlt
  | Movq_to_xmm of Reg.Xmm.t * Reg.t  (** low qword := gpr, high qword := 0 *)
  | Movq_from_xmm of Reg.t * Reg.Xmm.t  (** gpr := low qword *)
  | Pinsrq_high of Reg.Xmm.t * Reg.t  (** high qword := gpr (models punpckhdq use) *)
  | Movhps_load of Reg.Xmm.t * Operand.mem  (** high qword := mem64 *)
  | Movq_store of Operand.mem * Reg.Xmm.t  (** mem64 := low qword *)
  | Movdqu_load of Reg.Xmm.t * Operand.mem  (** 128-bit load *)
  | Movdqu_store of Operand.mem * Reg.Xmm.t  (** 128-bit store *)
  | Aesenc of Reg.Xmm.t * Reg.Xmm.t  (** one AES round: dst with round key src *)
  | Aesenclast of Reg.Xmm.t * Reg.Xmm.t
  | Pcmpeq128 of Reg.Xmm.t * Operand.mem
      (** compare full 128 bits against memory; sets ZF (the paper's
          [comiss]-based canary comparison, with exact semantics) *)

val equal : t -> t -> bool

val is_terminator : t -> bool
(** Ret / Jmp / Hlt — ends a basic block unconditionally. *)

val mentioned_symbols : t -> string list
(** Unresolved [Sym] targets, for the linker. *)

val resolve : (string -> int64) -> t -> t
(** Replace every [Sym s] with [Abs (lookup s)].
    Raises whatever [lookup] raises on unknown symbols. *)
