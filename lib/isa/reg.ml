type t =
  | RAX | RBX | RCX | RDX | RSI | RDI | RBP | RSP
  | R8 | R9 | R10 | R11 | R12 | R13 | R14 | R15

let all =
  [ RAX; RBX; RCX; RDX; RSI; RDI; RBP; RSP; R8; R9; R10; R11; R12; R13; R14; R15 ]

let index = function
  | RAX -> 0 | RBX -> 1 | RCX -> 2 | RDX -> 3
  | RSI -> 4 | RDI -> 5 | RBP -> 6 | RSP -> 7
  | R8 -> 8 | R9 -> 9 | R10 -> 10 | R11 -> 11
  | R12 -> 12 | R13 -> 13 | R14 -> 14 | R15 -> 15

let of_index = function
  | 0 -> Some RAX | 1 -> Some RBX | 2 -> Some RCX | 3 -> Some RDX
  | 4 -> Some RSI | 5 -> Some RDI | 6 -> Some RBP | 7 -> Some RSP
  | 8 -> Some R8 | 9 -> Some R9 | 10 -> Some R10 | 11 -> Some R11
  | 12 -> Some R12 | 13 -> Some R13 | 14 -> Some R14 | 15 -> Some R15
  | _ -> None

let of_index_exn i =
  match of_index i with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Reg.of_index_exn: %d" i)

let name = function
  | RAX -> "rax" | RBX -> "rbx" | RCX -> "rcx" | RDX -> "rdx"
  | RSI -> "rsi" | RDI -> "rdi" | RBP -> "rbp" | RSP -> "rsp"
  | R8 -> "r8" | R9 -> "r9" | R10 -> "r10" | R11 -> "r11"
  | R12 -> "r12" | R13 -> "r13" | R14 -> "r14" | R15 -> "r15"

let arg_registers = [ RDI; RSI; RDX; RCX; R8; R9 ]
let callee_saved = [ RBX; RBP; R12; R13; R14; R15 ]

let equal a b = index a = index b
let pp fmt r = Format.fprintf fmt "%%%s" (name r)

module Xmm = struct
  type t = int

  let of_index i = if i >= 0 && i <= 15 then Some i else None

  let of_index_exn i =
    match of_index i with
    | Some x -> x
    | None -> invalid_arg (Printf.sprintf "Reg.Xmm.of_index_exn: %d" i)

  let index x = x
  let name x = Printf.sprintf "xmm%d" x
  let equal = Int.equal
  let xmm0 = 0
  let xmm1 = 1
  let xmm15 = 15
end
