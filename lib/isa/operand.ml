type scale = S1 | S2 | S4 | S8

let scale_factor = function S1 -> 1 | S2 -> 2 | S4 -> 4 | S8 -> 8

let scale_of_factor = function
  | 1 -> Some S1
  | 2 -> Some S2
  | 4 -> Some S4
  | 8 -> Some S8
  | _ -> None

type mem = {
  seg_fs : bool;
  base : Reg.t option;
  index : (Reg.t * scale) option;
  disp : int64;
}

type t =
  | Reg of Reg.t
  | Imm of int64
  | Mem of mem

let reg r = Reg r
let imm v = Imm v
let imm_int v = Imm (Int64.of_int v)

let disp_fits v = v >= Int64.of_int32 Int32.min_int && v <= Int64.of_int32 Int32.max_int

let mem ?(seg_fs = false) ?base ?index disp =
  if not (disp_fits disp) then
    invalid_arg (Printf.sprintf "Operand.mem: displacement %Ld out of 32-bit range" disp);
  Mem { seg_fs; base; index; disp }

let mem_of ?(disp = 0L) r = mem ~base:r disp
let fs disp = mem ~seg_fs:true disp
let rbp_rel off = mem ~base:Reg.RBP (Int64.of_int off)
let rsp_rel off = mem ~base:Reg.RSP (Int64.of_int off)

let is_mem = function Mem _ -> true | Reg _ | Imm _ -> false

let equal a b =
  match (a, b) with
  | Reg r1, Reg r2 -> Reg.equal r1 r2
  | Imm v1, Imm v2 -> Int64.equal v1 v2
  | Mem m1, Mem m2 ->
    m1.seg_fs = m2.seg_fs
    && Option.equal Reg.equal m1.base m2.base
    && Option.equal
         (fun (r1, s1) (r2, s2) -> Reg.equal r1 r2 && s1 = s2)
         m1.index m2.index
    && Int64.equal m1.disp m2.disp
  | (Reg _ | Imm _ | Mem _), _ -> false

let pp_mem fmt m =
  if m.seg_fs then Format.fprintf fmt "%%fs:";
  if m.disp <> 0L || (m.base = None && m.index = None) then begin
    if Int64.compare m.disp 0L < 0 then
      Format.fprintf fmt "-0x%Lx" (Int64.neg m.disp)
    else Format.fprintf fmt "0x%Lx" m.disp
  end;
  match (m.base, m.index) with
  | None, None -> ()
  | base, index ->
    Format.fprintf fmt "(";
    (match base with Some b -> Reg.pp fmt b | None -> ());
    (match index with
    | Some (r, s) -> Format.fprintf fmt ",%a,%d" Reg.pp r (scale_factor s)
    | None -> ());
    Format.fprintf fmt ")"

let pp fmt = function
  | Reg r -> Reg.pp fmt r
  | Imm v -> Format.fprintf fmt "$0x%Lx" v
  | Mem m -> pp_mem fmt m

let to_string op = Format.asprintf "%a" pp op
