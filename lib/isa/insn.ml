type target = Sym of string | Abs of int64

type cond = E | NE | L | LE | G | GE | B | BE | A | AE | S | NS

let cond_name = function
  | E -> "e" | NE -> "ne" | L -> "l" | LE -> "le" | G -> "g" | GE -> "ge"
  | B -> "b" | BE -> "be" | A -> "a" | AE -> "ae" | S -> "s" | NS -> "ns"

let cond_index = function
  | E -> 0 | NE -> 1 | L -> 2 | LE -> 3 | G -> 4 | GE -> 5
  | B -> 6 | BE -> 7 | A -> 8 | AE -> 9 | S -> 10 | NS -> 11

let cond_of_index = function
  | 0 -> Some E | 1 -> Some NE | 2 -> Some L | 3 -> Some LE
  | 4 -> Some G | 5 -> Some GE | 6 -> Some B | 7 -> Some BE
  | 8 -> Some A | 9 -> Some AE | 10 -> Some S | 11 -> Some NS
  | _ -> None

let negate_cond = function
  | E -> NE | NE -> E | L -> GE | GE -> L | LE -> G | G -> LE
  | B -> AE | AE -> B | BE -> A | A -> BE | S -> NS | NS -> S

type binop = Add | Sub | Xor | And | Or | Cmp | Test | Imul | Idiv | Irem

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Xor -> "xor" | And -> "and"
  | Or -> "or" | Cmp -> "cmp" | Test -> "test" | Imul -> "imul"
  | Idiv -> "idiv" | Irem -> "irem"

let binop_index = function
  | Add -> 0 | Sub -> 1 | Xor -> 2 | And -> 3
  | Or -> 4 | Cmp -> 5 | Test -> 6 | Imul -> 7 | Idiv -> 8 | Irem -> 9

let binop_of_index = function
  | 0 -> Some Add | 1 -> Some Sub | 2 -> Some Xor | 3 -> Some And
  | 4 -> Some Or | 5 -> Some Cmp | 6 -> Some Test | 7 -> Some Imul
  | 8 -> Some Idiv | 9 -> Some Irem
  | _ -> None

type shiftop = Shl | Shr | Sar

let shiftop_name = function Shl -> "shl" | Shr -> "shr" | Sar -> "sar"
let shiftop_index = function Shl -> 0 | Shr -> 1 | Sar -> 2

let shiftop_of_index = function
  | 0 -> Some Shl | 1 -> Some Shr | 2 -> Some Sar | _ -> None

type t =
  | Nop
  | Mov of Operand.t * Operand.t
  | Movb of Operand.t * Operand.t
  | Movl of Operand.t * Operand.t
  | Lea of Reg.t * Operand.mem
  | Push of Operand.t
  | Pop of Operand.t
  | Bin of binop * Operand.t * Operand.t
  | Shift of shiftop * Operand.t * int
  | Neg of Operand.t
  | Not of Operand.t
  | Jmp of target
  | Jcc of cond * target
  | Call of target
  | Call_ind of Operand.t
  | Ret
  | Leave
  | Setcc of cond * Reg.t
  | Rdrand of Reg.t
  | Rdtsc
  | Pac of Reg.t * Reg.t
  | Aut of Reg.t * Reg.t
  | Syscall
  | Hlt
  | Movq_to_xmm of Reg.Xmm.t * Reg.t
  | Movq_from_xmm of Reg.t * Reg.Xmm.t
  | Pinsrq_high of Reg.Xmm.t * Reg.t
  | Movhps_load of Reg.Xmm.t * Operand.mem
  | Movq_store of Operand.mem * Reg.Xmm.t
  | Movdqu_load of Reg.Xmm.t * Operand.mem
  | Movdqu_store of Operand.mem * Reg.Xmm.t
  | Aesenc of Reg.Xmm.t * Reg.Xmm.t
  | Aesenclast of Reg.Xmm.t * Reg.Xmm.t
  | Pcmpeq128 of Reg.Xmm.t * Operand.mem

let equal (a : t) (b : t) = a = b

let is_terminator = function
  | Ret | Jmp _ | Hlt -> true
  | Nop | Mov _ | Movb _ | Movl _ | Lea _ | Push _ | Pop _ | Bin _ | Shift _
  | Neg _ | Not _ | Jcc _ | Call _ | Call_ind _ | Leave | Setcc _ | Rdrand _ | Rdtsc
  | Pac _ | Aut _
  | Syscall | Movq_to_xmm _ | Movq_from_xmm _ | Pinsrq_high _ | Movhps_load _
  | Movq_store _ | Movdqu_load _ | Movdqu_store _ | Aesenc _ | Aesenclast _
  | Pcmpeq128 _ -> false

let target_symbols = function Sym s -> [ s ] | Abs _ -> []

let mentioned_symbols = function
  | Jmp t | Jcc (_, t) | Call t -> target_symbols t
  | Nop | Mov _ | Movb _ | Movl _ | Lea _ | Push _ | Pop _ | Bin _ | Shift _
  | Neg _ | Not _ | Call_ind _ | Ret | Leave | Setcc _ | Rdrand _ | Rdtsc
  | Pac _ | Aut _
  | Syscall | Hlt
  | Movq_to_xmm _ | Movq_from_xmm _ | Pinsrq_high _ | Movhps_load _
  | Movq_store _ | Movdqu_load _ | Movdqu_store _ | Aesenc _ | Aesenclast _
  | Pcmpeq128 _ -> []

let resolve lookup insn =
  let target = function Sym s -> Abs (lookup s) | Abs _ as t -> t in
  match insn with
  | Jmp t -> Jmp (target t)
  | Jcc (c, t) -> Jcc (c, target t)
  | Call t -> Call (target t)
  | Nop | Mov _ | Movb _ | Movl _ | Lea _ | Push _ | Pop _ | Bin _ | Shift _
  | Neg _ | Not _ | Call_ind _ | Ret | Leave | Setcc _ | Rdrand _ | Rdtsc
  | Pac _ | Aut _
  | Syscall | Hlt
  | Movq_to_xmm _ | Movq_from_xmm _ | Pinsrq_high _ | Movhps_load _
  | Movq_store _ | Movdqu_load _ | Movdqu_store _ | Aesenc _ | Aesenclast _
  | Pcmpeq128 _ -> insn
