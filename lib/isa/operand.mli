(** Instruction operands: registers, immediates and memory references.

    Memory references follow x86 addressing: optional segment override
    ([%fs] — the TLS segment, central to every canary scheme), optional
    base register, optional scaled index, and a signed 32-bit
    displacement. *)

type scale = S1 | S2 | S4 | S8

val scale_factor : scale -> int
val scale_of_factor : int -> scale option

type mem = {
  seg_fs : bool;  (** address is relative to the FS (TLS) base *)
  base : Reg.t option;
  index : (Reg.t * scale) option;
  disp : int64;  (** must fit in a signed 32-bit value *)
}

type t =
  | Reg of Reg.t
  | Imm of int64
  | Mem of mem

val reg : Reg.t -> t
val imm : int64 -> t
val imm_int : int -> t

val mem : ?seg_fs:bool -> ?base:Reg.t -> ?index:Reg.t * scale -> int64 -> t
(** [mem disp] builds a memory operand; raises [Invalid_argument] if the
    displacement does not fit in 32 bits signed. *)

val mem_of : ?disp:int64 -> Reg.t -> t
(** [mem_of ~disp r] is [disp(r)] — base-plus-displacement. *)

val fs : int64 -> t
(** [fs disp] is the TLS access [%fs:disp]. *)

val rbp_rel : int -> t
(** [rbp_rel off] is [off(%rbp)] — the compiler's frame-slot access. *)

val rsp_rel : int -> t

val is_mem : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
