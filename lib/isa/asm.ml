open Format

let pp_target fmt = function
  | Insn.Sym s -> fprintf fmt "<%s>" s
  | Insn.Abs a -> fprintf fmt "0x%Lx" a

let pp_xmm fmt x = fprintf fmt "%%%s" (Reg.Xmm.name x)
let pp_mem fmt m = Operand.pp fmt (Operand.Mem m)

(* AT&T order: src, dst. *)
let pp fmt insn =
  match insn with
  | Insn.Nop -> fprintf fmt "nop"
  | Mov (dst, src) -> fprintf fmt "mov    %a,%a" Operand.pp src Operand.pp dst
  | Movb (dst, src) -> fprintf fmt "movb   %a,%a" Operand.pp src Operand.pp dst
  | Movl (dst, src) -> fprintf fmt "movl   %a,%a" Operand.pp src Operand.pp dst
  | Lea (r, m) -> fprintf fmt "lea    %a,%a" pp_mem m Reg.pp r
  | Push op -> fprintf fmt "push   %a" Operand.pp op
  | Pop op -> fprintf fmt "pop    %a" Operand.pp op
  | Bin (op, dst, src) ->
    fprintf fmt "%-6s %a,%a" (Insn.binop_name op) Operand.pp src Operand.pp dst
  | Shift (op, dst, k) ->
    fprintf fmt "%-6s $%d,%a" (Insn.shiftop_name op) k Operand.pp dst
  | Neg op -> fprintf fmt "neg    %a" Operand.pp op
  | Not op -> fprintf fmt "not    %a" Operand.pp op
  | Jmp t -> fprintf fmt "jmp    %a" pp_target t
  | Jcc (c, t) -> fprintf fmt "j%-5s %a" (Insn.cond_name c) pp_target t
  | Call t -> fprintf fmt "callq  %a" pp_target t
  | Call_ind op -> fprintf fmt "callq  *%a" Operand.pp op
  | Ret -> fprintf fmt "retq"
  | Setcc (c, r) -> fprintf fmt "set%-4s %a" (Insn.cond_name c) Reg.pp r
  | Leave -> fprintf fmt "leaveq"
  | Rdrand r -> fprintf fmt "rdrand %a" Reg.pp r
  | Pac (d, m) -> fprintf fmt "pac    %a,%a" Reg.pp m Reg.pp d
  | Aut (d, m) -> fprintf fmt "aut    %a,%a" Reg.pp m Reg.pp d
  | Rdtsc -> fprintf fmt "rdtsc"
  | Syscall -> fprintf fmt "syscall"
  | Hlt -> fprintf fmt "hlt"
  | Movq_to_xmm (x, r) -> fprintf fmt "movq   %a,%a" Reg.pp r pp_xmm x
  | Movq_from_xmm (r, x) -> fprintf fmt "movq   %a,%a" pp_xmm x Reg.pp r
  | Pinsrq_high (x, r) -> fprintf fmt "pinsrq $1,%a,%a" Reg.pp r pp_xmm x
  | Movhps_load (x, m) -> fprintf fmt "movhps %a,%a" pp_mem m pp_xmm x
  | Movq_store (m, x) -> fprintf fmt "movq   %a,%a" pp_xmm x pp_mem m
  | Movdqu_load (x, m) -> fprintf fmt "movdqu %a,%a" pp_mem m pp_xmm x
  | Movdqu_store (m, x) -> fprintf fmt "movdqu %a,%a" pp_xmm x pp_mem m
  | Aesenc (dst, src) -> fprintf fmt "aesenc %a,%a" pp_xmm src pp_xmm dst
  | Aesenclast (dst, src) -> fprintf fmt "aesenclast %a,%a" pp_xmm src pp_xmm dst
  | Pcmpeq128 (x, m) -> fprintf fmt "pcmpeq128 %a,%a" pp_mem m pp_xmm x

let to_string insn = asprintf "%a" pp insn

let pp_listing ?(symbol_name = fun _ -> None) fmt listing =
  let annotate insn =
    let target = function
      | Insn.Abs a -> (
        match symbol_name a with
        | Some n -> Insn.Sym n
        | None -> Insn.Abs a)
      | Insn.Sym _ as t -> t
    in
    match insn with
    | Insn.Jmp t -> Insn.Jmp (target t)
    | Insn.Jcc (c, t) -> Insn.Jcc (c, target t)
    | Insn.Call t -> Insn.Call (target t)
    | other -> other
  in
  List.iter
    (fun (addr, insn) ->
      (match symbol_name addr with
      | Some n -> fprintf fmt "%s:@." n
      | None -> ());
      fprintf fmt "  %8Lx:  %a@." addr pp (annotate insn))
    listing
