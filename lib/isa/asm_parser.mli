(** Parser for the AT&T-flavoured assembly syntax {!Asm} prints —
    the inverse of the pretty-printer, so listings round-trip.

    Supports full listings: one instruction per line, [name:] label
    lines, [<sym>] symbolic targets, [#]-to-end-of-line comments and
    blank lines. *)

exception Error of int * string
(** [(line, message)]. *)

val parse_insn : string -> Insn.t
(** Parse a single instruction (no label, no comment).
    Raises {!Error} with line 1 on malformed input. *)

val parse_listing : string -> [ `Label of string | `Insn of Insn.t ] list
(** Parse a multi-line listing. *)

val to_builder : string -> Builder.t
(** Parse a listing straight into an assembler builder (labels become
    builder labels). *)
