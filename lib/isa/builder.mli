(** Two-pass assembler: collect labelled instructions, then resolve
    local labels to absolute addresses and emit bytes.

    Local labels (created with {!fresh_label} / {!label}) are resolved at
    {!assemble} time. Global symbols (other functions, glibc entry
    points) are left to the linker: {!assemble} accepts an [externs]
    resolver for them. *)

type t

type item =
  | Label of string
  | Instruction of Insn.t
  | Sym_imm_mov of Reg.t * string

val create : unit -> t

val items : t -> item list
(** The accumulated items in program order. *)

val of_items : item list -> t
(** Rebuild a builder from transformed items (peephole optimisation).
    Label bookkeeping is recomputed; the fresh-label counter restarts,
    so only use this after all labels have been created. *)

val emit : t -> Insn.t -> unit
val emit_all : t -> Insn.t list -> unit

val emit_mov_sym : t -> Reg.t -> string -> unit
(** [emit_mov_sym t r sym] emits [mov $<sym>,r] with the symbol's
    absolute address filled in at assembly time — how code takes the
    address of a function. *)

val fresh_label : t -> string -> string
(** [fresh_label t hint] returns a unique local label name. *)

val label : t -> string -> unit
(** Bind a label to the current position. Raises [Invalid_argument] if
    the label was already placed. *)

type assembled = {
  code : bytes;
  insns : (int * Insn.t) list;  (** offset-annotated resolved instructions *)
  labels : (string * int) list;  (** label -> offset *)
}

val assemble : t -> base:int64 -> externs:(string -> int64 option) -> assembled
(** Resolve all targets and encode. Local labels become [base + offset];
    other symbols are resolved through [externs].
    Raises [Invalid_argument] on an undefined symbol. *)

val size : t -> int
(** Encoded size in bytes without assembling. *)
