(** Binary encoding of instructions.

    The format is a compact, deterministic TLV-style encoding designed so
    that the two properties the paper's binary rewriter (§V-C) depends on
    hold by construction:

    - memory operands always carry a fixed-width 4-byte displacement, so
      changing a TLS offset (e.g. [%fs:0x28] → [%fs:0x2a8]) never changes
      the instruction length;
    - call/jump targets are fixed-width 8-byte absolute addresses, so
      retargeting a call preserves layout.

    Symbolic targets must be resolved before encoding. *)

exception Unresolved_symbol of string

val encode : Buffer.t -> Insn.t -> unit
(** Append the encoding of one instruction.
    Raises {!Unresolved_symbol} if the instruction still has a [Sym]
    target. *)

val to_bytes : Insn.t -> bytes

val length : Insn.t -> int
(** Encoded length in bytes. Defined for instructions with unresolved
    [Sym] targets too (symbols encode at the same width as addresses). *)

val list_to_bytes : Insn.t list -> bytes
