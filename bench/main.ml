(* Benchmark driver: regenerates every table and figure of the paper's
   evaluation (SVI) from the simulator, plus a Bechamel micro-suite
   measuring the host-side cost of each experiment's unit of work.

   Usage:
     bench/main.exe [OPTIONS]             run every experiment
     bench/main.exe [OPTIONS] <exp> [...] run selected experiments
     bench/main.exe micro                 run the Bechamel micro-benchmarks
     bench/main.exe tierbench             compiled tier vs interpreter A/B
     bench/main.exe validate FILE [...]   check telemetry JSON files
   Experiments: table1 table2 table3 table4 table5 fig5 effectiveness
                loadbench compat theorem1 exposure ablation
   Flags are declared through Harness.Cli (shared with pssp_cli);
   bench/main.exe --help prints the generated option list.

   Every experiment run also appends wall-clock + registry metrics to
   the --bench-out file in the working directory (schema-2 perf
   trajectory record; stdout is unaffected). *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ---- telemetry + perf trajectory ----------------------------------------- *)

let mem_stats_enabled = ref false
let effectiveness_budget = ref None
let bench_out = ref "BENCH_pr8.json"

(* loadbench knobs (see the `loadbench` command) *)
let load_connections = ref 64
let load_keepalive = ref 8
let load_mode = ref Net.Loadgen.Closed

type load_arch = Arch_fork | Arch_event | Arch_reuseport

let load_archs = ref [ Arch_fork; Arch_event; Arch_reuseport ]

let arch_profile arch profile =
  match arch with
  | Arch_fork -> profile
  | Arch_event -> Workload.Servers.event_loop profile
  | Arch_reuseport -> Workload.Servers.sharded profile

let campaign_records : Util.Benchfile.campaign list ref = ref []

let metric snapshot name =
  match List.assoc_opt name snapshot with Some v -> v | None -> 0

(* Wraps one campaign: resets the registry, times the run, records the
   full metrics snapshot for the --bench-out file, and (with
   --mem-stats) prints the fork-path line. Registry snapshots are sums
   over per-kernel work taken after worker domains join, so the line is
   byte-identical for every --jobs value — and, with --mem-stats off,
   stdout is byte-identical whether or not --metrics-out/--trace-out
   are recording. *)
let with_telemetry name f =
  Telemetry.Registry.reset_all ();
  let t0 = Unix.gettimeofday () in
  f ();
  let wall = Unix.gettimeofday () -. t0 in
  let m = Telemetry.Registry.snapshot () in
  campaign_records :=
    { Util.Benchfile.name; wall_s = wall; metrics = m } :: !campaign_records;
  if !mem_stats_enabled then
    Printf.printf
      "MEM_STATS %s: forks=%d pages_shared=%d pages_cow_copied=%d \
       tcache_blocks_shared=%d tcache_tables_copied=%d tcache_hits=%d \
       tcache_misses=%d tcache_compiles=%d tcache_invalidated=%d\n"
      name
      (metric m "os.kernel.forks")
      (metric m Vm64.Memory.metric_pages_aliased)
      (metric m Vm64.Memory.metric_cow_breaks)
      (metric m Vm64.Tcache.metric_blocks_shared)
      (metric m Vm64.Tcache.metric_tables_materialised)
      (metric m Vm64.Tcache.metric_hits)
      (metric m Vm64.Tcache.metric_misses)
      (metric m Vm64.Tcache.metric_compiles)
      (metric m Vm64.Tcache.metric_invalidated)

let write_bench_json ~jobs =
  match List.rev !campaign_records with
  | [] -> ()
  | campaigns ->
    Util.Benchfile.write !bench_out
      {
        Util.Benchfile.pr = 8;
        jobs;
        compile_tier = Vm64.Compile.tier ();
        campaigns;
      }

(* `validate FILE...`: re-read telemetry JSON through the schema-2
   reader (campaign record first, bare metrics snapshot second) so CI
   catches writer/reader drift. *)
let run_validate files =
  List.iter
    (fun file ->
      match Util.Benchfile.read file with
      | Ok t ->
        Printf.printf "VALIDATE %s: ok (campaign record, %d campaign(s))\n" file
          (List.length t.Util.Benchfile.campaigns)
      | Error bench_err -> (
        match Util.Benchfile.read_metrics file with
        | Ok m ->
          Printf.printf "VALIDATE %s: ok (metrics snapshot, %d metric(s))\n" file
            (List.length m)
        | Error metrics_err ->
          Printf.eprintf "VALIDATE %s: FAILED\n  as campaign record: %s\n  as metrics snapshot: %s\n"
            file bench_err metrics_err;
          exit 1))
    files

let run_fig5 ~jobs () =
  section "Figure 5 - runtime overhead vs native (28-program SPEC-like suite)";
  let r = Harness.Fig5.run ~jobs () in
  Util.Table.print (Harness.Fig5.to_table r);
  print_newline ();
  print_string (Harness.Fig5.to_chart r);
  Printf.printf
    "Paper: compiler-based 0.24%% avg, instrumentation-based 1.01%% avg.\n\
     Measured: compiler %.2f%%, instrumentation %.2f%%.\n"
    r.Harness.Fig5.compiler_avg r.Harness.Fig5.instr_avg

let run_table1 ~jobs () =
  section "Table I - brute-force defence comparison (all cells measured)";
  Util.Table.print (Harness.Table1.to_table (Harness.Table1.run ~jobs ()));
  print_string
    "Paper: SSP no-BROP-prevention; RAF incorrect; DynaGuard 1.5%/156%;\n\
     DCR NA/>24%; P-SSP prevents BROP, correct, lightest overheads.\n"

let run_table2 ~jobs () =
  section "Table II - code expansion";
  let r = Harness.Table2.run ~jobs () in
  Util.Table.print (Harness.Table2.to_table r);
  print_string
    "Paper: 0.27% compiler / 0 dynamic / 2.78% static (on multi-MB glibc\n\
     binaries; our binaries are a few KB, so fixed-size additions weigh\n\
     proportionally more - the ordering and the exact 0 are the result).\n"

let run_table3 () =
  section "Table III - web server response time (ms per request)";
  Util.Table.print (Harness.Table34.to_table3 (Harness.Table34.run_web ()));
  print_string "Paper: Apache2 33.006/33.008/33.099; Nginx 3.088/3.090/3.088.\n"

let run_table4 () =
  section "Table IV - database server query time and memory";
  Util.Table.print (Harness.Table34.to_table4 (Harness.Table34.run_db ()));
  print_string
    "Paper: MySQL 3.33 ms & 22.59 MB in all three columns; SQLite\n\
     167.27/167.27/167 ms. The invariance across columns is the result.\n";
  Util.Table.print (Harness.Table34.latency_table (Harness.Table34.run_latency ()))

let run_table5 ~jobs () =
  section "Table V - prologue+epilogue canary cycles";
  Util.Table.print (Harness.Table5.to_table (Harness.Table5.run ~jobs ()));
  print_string "Paper: P-SSP 6; P-SSP-NT 343; P-SSP-LV 343 / 986; P-SSP-OWF 278.\n"

let run_effectiveness ~jobs () =
  section "Effectiveness (SVI-C) - byte-by-byte attacks on forking servers";
  Util.Table.print
    (Harness.Effectiveness.to_table
       (Harness.Effectiveness.run ~jobs ?budget:!effectiveness_budget ()));
  print_string
    "Paper: the attack succeeds on SSP-compiled Nginx/Ali and fails on the\n\
     P-SSP-compiled versions.\n"

let run_compat () =
  section "Compatibility (SVI-C) - P-SSP and SSP in one control flow";
  Util.Table.print (Harness.Compat.to_table (Harness.Compat.run ()))

let run_theorem1 () =
  section "Theorem 1 - exposed shadow halves carry no information about C";
  Util.Table.print (Harness.Theorem1.to_table (Harness.Theorem1.run ()));
  Util.Table.print (Harness.Theorem1.machine_table (Harness.Theorem1.run_machine ()))

let run_exposure () =
  section "Exposure resilience (SIV-C) - leak one frame, forge another";
  Util.Table.print (Harness.Exposure.to_table (Harness.Exposure.run ()))

let run_ablation () =
  section "Ablations - nonce, canary width, global-buffer variant";
  Util.Table.print (Harness.Ablation.nonce_table (Harness.Ablation.run_nonce ()));
  Util.Table.print (Harness.Ablation.width_table (Harness.Ablation.run_width ()));
  Util.Table.print
    (Harness.Ablation.buffer_table (Harness.Ablation.run_global_buffer ()));
  Util.Table.print
    (Harness.Ablation.gb_compiled_table (Harness.Ablation.run_global_buffer_compiled ()))

(* ---- loadbench: concurrent traffic against the server profiles ----------- *)

let loadgen_mode_name = function
  | Net.Loadgen.Closed -> "closed"
  | Net.Loadgen.Open { interarrival } ->
    Printf.sprintf "open/%Ld" interarrival

let run_loadbench ~jobs () =
  section "Loadbench - concurrent keep-alive traffic (lib/net scheduler)";
  let total = Option.value !effectiveness_budget ~default:512 in
  let connections = !load_connections in
  let keepalive = !load_keepalive in
  let mode = !load_mode in
  Printf.printf
    "mode=%s connections=%d keepalive=%d requests-per-cell=%d\n"
    (loadgen_mode_name mode) connections keepalive total;
  let cells =
    List.concat_map
      (fun base ->
        List.concat_map
          (fun arch ->
            let profile = arch_profile arch base in
            [ (profile, Harness.Runner.Native);
              (profile, Harness.Runner.Compiler Pssp.Scheme.Pssp) ])
          !load_archs)
      [ Workload.Servers.apache2; Workload.Servers.nginx ]
  in
  let results =
    Harness.Pool.map ~jobs
      (fun (profile, deployment) ->
        ( profile,
          deployment,
          Harness.Runner.run_load deployment profile ~mode ~connections
            ~keepalive ~total ~slow_every:17 ~abort_every:97 ))
      cells
  in
  List.iter
    (fun ((profile : Workload.Servers.profile), deployment, r) ->
      Printf.printf
        "LOADBENCH %s/%s: sent=%d ok=%d failed=%d aborted=%d refused=%d \
         peak_open=%d forks=%d lat_p50=%.0f lat_p99=%.0f lat_p999=%.0f \
         cycles=%Ld rps=%.1f sat_rps=%.1f alive=%s\n"
        profile.Workload.Servers.profile_name
        (Harness.Runner.deployment_name deployment)
        r.Harness.Runner.sent r.Harness.Runner.completed
        r.Harness.Runner.load_failed r.Harness.Runner.aborted
        r.Harness.Runner.refused r.Harness.Runner.peak_open
        r.Harness.Runner.load_forks r.Harness.Runner.p50_latency_cycles
        r.Harness.Runner.p99_latency_cycles
        r.Harness.Runner.p999_latency_cycles r.Harness.Runner.virtual_cycles
        r.Harness.Runner.throughput_rps r.Harness.Runner.saturation_rps
        (if r.Harness.Runner.server_alive then "yes" else "no"))
    results

let experiments =
  [
    ("fig5", run_fig5);
    ("table1", run_table1);
    ("table2", run_table2);
    ("table3", fun ~jobs:_ () -> run_table3 ());
    ("table4", fun ~jobs:_ () -> run_table4 ());
    ("table5", run_table5);
    ("effectiveness", run_effectiveness);
    ("loadbench", run_loadbench);
    ("compat", fun ~jobs:_ () -> run_compat ());
    ("theorem1", fun ~jobs:_ () -> run_theorem1 ());
    ("exposure", fun ~jobs:_ () -> run_exposure ());
    ("ablation", fun ~jobs:_ () -> run_ablation ());
  ]

(* ---- Bechamel micro-suite: one Test.make per table ----------------------- *)

let micro_tests () =
  let open Bechamel in
  let bench_once =
    (* fig5's unit of work: one benchmark under one deployment *)
    let bench = Option.get (Workload.Spec.find "gobmk") in
    Test.make ~name:"fig5: one SPEC run (compiler P-SSP)"
      (Staged.stage (fun () ->
           ignore
             (Harness.Runner.run_bench (Harness.Runner.Compiler Pssp.Scheme.Pssp)
                bench)))
  in
  let brop_trial =
    (* table1/effectiveness unit: one oracle query *)
    let image =
      Mcc.Driver.compile ~scheme:Pssp.Scheme.Pssp
        (Minic.Parser.parse (Workload.Vuln.fork_server ~buffer_size:16))
    in
    let oracle = Attack.Oracle.create ~preload:Os.Preload.Pssp_wide image in
    Test.make ~name:"table1: one byte-by-byte oracle query"
      (Staged.stage (fun () ->
           ignore (Attack.Oracle.query oracle (Bytes.make 17 'A'))))
  in
  let expansion =
    Test.make ~name:"table2: compile + instrument one binary"
      (Staged.stage (fun () ->
           let ssp =
             Mcc.Driver.compile ~scheme:Pssp.Scheme.Ssp
               (Minic.Parser.parse (Workload.Vuln.echo_once ~buffer_size:16))
           in
           ignore (Rewriter.Driver.instrument ssp)))
  in
  let request =
    let profile = Workload.Servers.nginx in
    let image =
      Mcc.Driver.compile ~scheme:Pssp.Scheme.Pssp
        (Minic.Parser.parse profile.Workload.Servers.source)
    in
    let kernel = Os.Kernel.create () in
    let server = Os.Kernel.spawn kernel ~preload:Os.Preload.Pssp_wide image in
    ignore (Os.Kernel.run kernel server);
    Test.make ~name:"table3/4: one served request (Nginx profile)"
      (Staged.stage (fun () ->
           ignore
             (Os.Kernel.resume_with_request kernel server (Bytes.of_string "GET /"))))
  in
  let prologue =
    Test.make ~name:"table5: 3k guarded calls (P-SSP-NT)"
      (Staged.stage (fun () ->
           ignore
             (Harness.Table5.measure_scheme ~calls:3000 Pssp.Scheme.Pssp_nt
                ~criticals:0)))
  in
  let rerandomize =
    let rng = Util.Prng.create 1L in
    Test.make ~name:"theorem1: one Re-Randomize (Algorithm 1)"
      (Staged.stage (fun () -> ignore (Pssp.Canary.re_randomize rng 0xFEEDL)))
  in
  [ bench_once; brop_trial; expansion; request; prologue; rerandomize ]

let run_micro () =
  let open Bechamel in
  section "Bechamel micro-benchmarks (host cost of each experiment's unit)";
  let benchmark test =
    let quota = Time.second 0.5 in
    Benchmark.all
      (Benchmark.cfg ~limit:200 ~quota ~kde:(Some 10) ())
      Toolkit.Instance.[ monotonic_clock ]
      test
  in
  let analyze results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock results
  in
  List.iter
    (fun test ->
      let results = benchmark test in
      let stats = analyze results in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-48s %12.0f ns/run\n" name est
          | _ -> Printf.printf "%-48s (no estimate)\n" name)
        stats)
    (micro_tests ())

(* ---- tier A/B: same workload, compiled tier forced off then on ----------- *)

let run_tierbench () =
  section
    "Tier A/B - interpreter vs closures vs chained/fused vs register caching";
  (* best-of-3 to shrug off GC and scheduler noise; the first run
     doubles as warm-up for the host *)
  let best_of_3 f =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      f ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  (* each timed cell also lands in the --bench-out record as its own
     campaign (one entry per tier), so the perf trajectory file carries
     the tier deltas alongside the campaign walls *)
  let time_tier ~workload tier f =
    Vm64.Compile.set_tier tier;
    Telemetry.Registry.reset_all ();
    let dt = best_of_3 f in
    let m = Telemetry.Registry.snapshot () in
    campaign_records :=
      {
        Util.Benchfile.name = Printf.sprintf "tierbench/%s@tier%d" workload tier;
        wall_s = dt;
        metrics = m;
      }
      :: !campaign_records;
    Vm64.Compile.set_tier 3;
    dt
  in
  (* gate 1 (PR 3): compiled execution beats the interpreter on the
     forking-server workload *)
  let profile = Workload.Servers.nginx in
  let requests = 2000 in
  let serve () =
    ignore
      (Harness.Runner.run_server (Harness.Runner.Compiler Pssp.Scheme.Pssp)
         profile ~requests)
  in
  let interp_s = time_tier ~workload:"nginx" 0 serve in
  let compiled_s = time_tier ~workload:"nginx" 3 serve in
  Printf.printf
    "TIERBENCH profile=%s requests=%d interp_s=%.3f compiled_s=%.3f speedup=%.2fx\n"
    profile.Workload.Servers.profile_name requests interp_s compiled_s
    (interp_s /. compiled_s);
  if compiled_s >= interp_s then begin
    Printf.eprintf
      "tierbench: compiled tier (%.3fs) is not faster than the interpreter \
       (%.3fs)\n"
      compiled_s interp_s;
    exit 1
  end;
  (* gate 2 (PR 7): chaining + superblocks beat the per-block closure
     tier on table5, serial (BENCH_pr3 baseline: 0.63s) *)
  let table5 () = ignore (Harness.Table5.run ~jobs:1 ()) in
  let tier1_s = time_tier ~workload:"table5" 1 table5 in
  let tier2_s = time_tier ~workload:"table5" 2 table5 in
  Printf.printf
    "TIERBENCH2 experiment=table5 jobs=1 tier1_s=%.3f tier2_s=%.3f speedup=%.2fx\n"
    tier1_s tier2_s (tier1_s /. tier2_s);
  if tier2_s >= tier1_s then begin
    Printf.eprintf
      "tierbench: chained tier (%.3fs) is not faster than per-block closures \
       (%.3fs)\n"
      tier2_s tier1_s;
    exit 1
  end;
  (* gate 3 (PR 8): register caching beats the plain chained tier on the
     same serial table5 workload *)
  let tier3_s = time_tier ~workload:"table5" 3 table5 in
  Printf.printf
    "TIERBENCH3 experiment=table5 jobs=1 tier2_s=%.3f tier3_s=%.3f speedup=%.2fx\n"
    tier2_s tier3_s (tier2_s /. tier3_s);
  if tier3_s >= tier2_s then begin
    Printf.eprintf
      "tierbench: register-caching tier (%.3fs) is not faster than the \
       chained tier (%.3fs)\n"
      tier3_s tier2_s;
    exit 1
  end

let () =
  let jobs = ref 1 in
  let telem = Harness.Cli.telemetry_opts () in
  let specs =
    [
      Harness.Cli.nonneg_int ~name:"--jobs" ~docv:"N"
        ~doc:
          "fan the campaign workloads across N domains (default 1;\n\
           0 = recommended domain count). Output is byte-identical for any N."
        (fun j -> jobs := j);
      Harness.Cli.pos_int ~name:"--budget" ~docv:"N"
        ~doc:
          "trial budget per effectiveness cell (default 20000) /\n\
           requests per loadbench cell (default 512)"
        (fun b -> effectiveness_budget := Some b);
      Harness.Cli.pos_int ~name:"--connections" ~docv:"N"
        ~doc:"loadbench: concurrent client population (default 64)"
        (fun n -> load_connections := n);
      Harness.Cli.pos_int ~name:"--keepalive" ~docv:"N"
        ~doc:"loadbench: requests per connection before reconnecting (default 8)"
        (fun n -> load_keepalive := n);
      Harness.Cli.value ~name:"--loadgen" ~docv:"open|closed"
        ~doc:
          "loadbench population model: closed loop (default) or open\n\
           arrivals on a fixed interarrival clock"
        (fun s ->
          match s with
          | "closed" ->
            load_mode := Net.Loadgen.Closed;
            Ok ()
          | "open" ->
            load_mode := Net.Loadgen.Open { interarrival = 20_000L };
            Ok ()
          | _ -> Error (Harness.Cli.expects ~name:"--loadgen" ~what:"open or closed" s));
      Harness.Cli.value ~name:"--server-arch" ~docv:"fork|event|reuseport|all"
        ~doc:
          "loadbench server architecture: fork-per-connection, the\n\
           single-process epoll event loop, SO_REUSEPORT-style sharded\n\
           acceptors, or all three (default all)"
        (fun s ->
          match s with
          | "fork" ->
            load_archs := [ Arch_fork ];
            Ok ()
          | "event" ->
            load_archs := [ Arch_event ];
            Ok ()
          | "reuseport" ->
            load_archs := [ Arch_reuseport ];
            Ok ()
          | "all" ->
            load_archs := [ Arch_fork; Arch_event; Arch_reuseport ];
            Ok ()
          | _ ->
            Error
              (Harness.Cli.expects ~name:"--server-arch"
                 ~what:"fork, event, reuseport or all" s));
      Harness.Cli.flag ~name:"--mem-stats"
        ~doc:
          "print a deterministic fork-path + translation-cache telemetry\n\
           line after each campaign. NOTE: the tcache counters depend on\n\
           the tier (compiles is 0 when off; chained execution bypasses\n\
           hit accounting), so tier A/B output diffs must not enable it."
        (fun () -> mem_stats_enabled := true);
      Harness.Cli.tier_value ~name:"--compile-tier"
        ~doc:
          "execution tier: off = interpreter, 1 = per-block closures,\n\
           2 = chained/fused superblocks, 3 = register caching\n\
           (default; on = 3). Campaign output is byte-identical for\n\
           every tier."
        Vm64.Compile.set_tier;
      Harness.Cli.string_value ~name:"--bench-out" ~docv:"FILE"
        ~doc:"where to write the perf trajectory record (default BENCH_pr8.json)"
        (fun f -> bench_out := f);
    ]
    @ Harness.Cli.telemetry_specs telem
  in
  let args =
    Harness.Cli.parse_or_exit ~prog:"bench/main.exe"
      ~positional:"[micro | tierbench | validate FILE... | <experiment>...]"
      specs
      (List.tl (Array.to_list Sys.argv))
  in
  let jobs = if !jobs = 0 then Harness.Pool.default_jobs () else !jobs in
  let run_named name f = with_telemetry name (fun () -> f ~jobs ()) in
  Harness.Cli.telemetry_start telem;
  (match args with
  | [ "micro" ] -> run_micro ()
  | [ "tierbench" ] -> run_tierbench ()
  | "validate" :: files -> run_validate files
  | [] ->
    print_string
      "P-SSP reproduction: regenerating every table and figure of the paper\n";
    List.iter (fun (name, f) -> run_named name f) experiments
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name experiments with
        | Some f -> run_named name f
        | None ->
          Printf.eprintf "unknown experiment %s (have: %s, micro, tierbench)\n"
            name
            (String.concat " " (List.map fst experiments));
          exit 1)
      names);
  write_bench_json ~jobs;
  Harness.Cli.telemetry_finish telem
