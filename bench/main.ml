(* Benchmark driver: regenerates every table and figure of the paper's
   evaluation (SVI) from the simulator, plus a Bechamel micro-suite
   measuring the host-side cost of each experiment's unit of work.

   Usage:
     bench/main.exe [OPTIONS]             run every experiment
     bench/main.exe [OPTIONS] <exp> [...] run selected experiments
     bench/main.exe micro                 run the Bechamel micro-benchmarks
     bench/main.exe tierbench             compiled tier vs interpreter A/B
     bench/main.exe zygotebench           cold-boot vs zygote-resume A/B
     bench/main.exe validate FILE [...]   check telemetry JSON files
     bench/main.exe merge FILE [...]      combine --shard output files
   Experiments: table1 table2 table3 table4 table5 fig5 effectiveness
                loadbench compat theorem1 exposure ablation
   Flags are declared through Harness.Cli (shared with pssp_cli);
   bench/main.exe --help prints the generated option list.

   Every experiment is a Harness.Campaign — a fixed number of
   deterministic cells plus a merge step that renders the stdout body —
   so this driver is a table-driven dispatcher over Harness.Campaigns.
   [--shards N] runs each campaign as N in-process shard passes
   (byte-identical output for every N); [--shard K/N] computes one
   shard silently and records its rows in the --bench-out file for a
   later [merge].

   Every experiment run also appends wall-clock + registry metrics to
   the --bench-out file in the working directory (schema-3 perf
   trajectory record; stdout is unaffected). *)

let section = Harness.Campaign.section

(* ---- telemetry + perf trajectory ----------------------------------------- *)

let mem_stats_enabled = ref false
let effectiveness_budget = ref None
let bench_out = ref "BENCH_pr10.json"

(* loadbench knobs (see the `loadbench` campaign) *)
let load_connections = ref 64
let load_keepalive = ref 8
let load_mode = ref Net.Loadgen.Closed

let load_archs =
  ref [ Harness.Loadbench.Fork; Harness.Loadbench.Event; Harness.Loadbench.Reuseport ]

(* effectiveness victim respawn (--zygote) *)
let respawn = ref Attack.Oracle.No_respawn

(* --scheme (repeatable): narrow effectiveness to these schemes *)
let schemes = ref []

(* shard execution (--shards N / --shard K/N) *)
let shards = ref 1
let shard_spec : (int * int) option ref = ref None

let campaign_records : Util.Benchfile.campaign list ref = ref []

let metric snapshot name =
  match List.assoc_opt name snapshot with Some v -> v | None -> 0

(* The deterministic fork-path line (--mem-stats). Registry snapshots
   are sums over per-kernel work taken after worker domains join, so
   the line is byte-identical for every --jobs and --shards value —
   and, with --mem-stats off, stdout is byte-identical whether or not
   --metrics-out/--trace-out are recording. *)
let print_mem_stats name m =
  Printf.printf
    "MEM_STATS %s: forks=%d pages_shared=%d pages_cow_copied=%d \
     tcache_blocks_shared=%d tcache_tables_copied=%d tcache_hits=%d \
     tcache_misses=%d tcache_compiles=%d tcache_invalidated=%d\n"
    name
    (metric m "os.kernel.forks")
    (metric m Vm64.Memory.metric_pages_aliased)
    (metric m Vm64.Memory.metric_cow_breaks)
    (metric m Vm64.Tcache.metric_blocks_shared)
    (metric m Vm64.Tcache.metric_tables_materialised)
    (metric m Vm64.Tcache.metric_hits)
    (metric m Vm64.Tcache.metric_misses)
    (metric m Vm64.Tcache.metric_compiles)
    (metric m Vm64.Tcache.metric_invalidated)

let record ?context ?cells ~name ~wall_s metrics =
  campaign_records :=
    Util.Benchfile.campaign ?context ?cells ~name ~wall_s metrics
    :: !campaign_records

let write_bench_json ~jobs =
  match List.rev !campaign_records with
  | [] -> ()
  | campaigns ->
    let shards, shard =
      match !shard_spec with
      | Some (k, n) -> (n, Some k)
      | None -> (!shards, None)
    in
    Util.Benchfile.write !bench_out
      (Util.Benchfile.make ~shards ?shard ~pr:10 ~jobs
         ~compile_tier:(Vm64.Compile.tier ()) campaigns)

(* One campaign under the dispatcher. In shard mode compute this
   shard's rows silently and carry them to the merge step through the
   --bench-out file; otherwise run all cells (as --shards in-process
   passes), render, and record the merged metrics. *)
let run_campaign ~jobs (c : Harness.Campaign.t) =
  match !shard_spec with
  | Some (k, n) ->
    Telemetry.Registry.reset_all ();
    let t0 = Unix.gettimeofday () in
    let rows = Harness.Campaign.run_shard ~jobs ~shards:n ~shard:k c in
    let wall = Unix.gettimeofday () -. t0 in
    record ~context:c.Harness.Campaign.context
      ~cells:(List.map (fun (i, row) -> (i, Util.Hex.of_string row)) rows)
      ~name:c.Harness.Campaign.name ~wall_s:wall
      (Telemetry.Registry.snapshot ())
  | None ->
    let t0 = Unix.gettimeofday () in
    let m = Harness.Campaign.run ~jobs ~shards:!shards c in
    let wall = Unix.gettimeofday () -. t0 in
    record ~context:c.Harness.Campaign.context ~name:c.Harness.Campaign.name
      ~wall_s:wall m;
    if !mem_stats_enabled then print_mem_stats c.Harness.Campaign.name m

(* `validate FILE...`: re-read telemetry JSON through the Benchfile
   reader (campaign record first, bare metrics snapshot second) so CI
   catches writer/reader drift. Accepts schema 2 and 3. *)
let run_validate files =
  List.iter
    (fun file ->
      match Util.Benchfile.read file with
      | Ok t ->
        Printf.printf "VALIDATE %s: ok (campaign record, %d campaign(s))\n" file
          (List.length t.Util.Benchfile.campaigns)
      | Error bench_err -> (
        match Util.Benchfile.read_metrics file with
        | Ok m ->
          Printf.printf "VALIDATE %s: ok (metrics snapshot, %d metric(s))\n" file
            (List.length m)
        | Error metrics_err ->
          Printf.eprintf "VALIDATE %s: FAILED\n  as campaign record: %s\n  as metrics snapshot: %s\n"
            file bench_err metrics_err;
          exit 1))
    files

(* ---- merge: combine --shard output files ---------------------------------- *)

let die fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "%s\n" msg;
      exit 1)
    fmt

(* Read the shard files, check that they tile a single run (same shard
   count, every shard index present exactly once, campaign lists and
   contexts agree), then render each campaign's body from the union of
   rows and write the merged record. Output is byte-identical to
   running the same experiments unsharded. *)
let run_merge ~config files =
  if files = [] then die "merge: no shard files given";
  let records =
    List.map
      (fun file ->
        match Util.Benchfile.read file with
        | Ok t -> (file, t)
        | Error msg -> die "merge: %s: %s" file msg)
      files
  in
  let first_file, first = List.hd records in
  let n = first.Util.Benchfile.shards in
  let campaign_names (t : Util.Benchfile.t) =
    List.map
      (fun (c : Util.Benchfile.campaign) -> c.Util.Benchfile.name)
      t.Util.Benchfile.campaigns
  in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (file, (t : Util.Benchfile.t)) ->
      if t.Util.Benchfile.shards <> n then
        die "merge: %s has %d shard(s), expected %d" file
          t.Util.Benchfile.shards n;
      (match t.Util.Benchfile.shard with
      | None -> die "merge: %s is not a shard file (no \"shard\" index)" file
      | Some k ->
        if Hashtbl.mem seen k then
          die "merge: duplicate shard %d/%d (%s)" k n file;
        Hashtbl.add seen k ());
      if campaign_names t <> campaign_names first then
        die "merge: %s lists different campaigns than %s" file first_file)
    records;
  if Hashtbl.length seen <> n then
    die "merge: have %d of %d shard file(s)" (Hashtbl.length seen) n;
  let merged =
    List.mapi
      (fun idx (c : Util.Benchfile.campaign) ->
        let name = c.Util.Benchfile.name in
        let parts =
          List.map
            (fun (file, (t : Util.Benchfile.t)) ->
              let part = List.nth t.Util.Benchfile.campaigns idx in
              if
                not
                  (String.equal part.Util.Benchfile.context
                     c.Util.Benchfile.context)
              then
                die
                  "merge: %s: campaign %s ran under a different configuration\n\
                  \  %s\n\
                  \  vs %s"
                  file name part.Util.Benchfile.context c.Util.Benchfile.context;
              part)
            records
        in
        let rows =
          List.concat_map
            (fun (p : Util.Benchfile.campaign) ->
              List.map
                (fun (i, hex) -> (i, Bytes.to_string (Util.Hex.to_bytes hex)))
                p.Util.Benchfile.cells)
            parts
        in
        (match Harness.Campaigns.find config name with
        | Some campaign ->
          Harness.Campaign.render ~context:c.Util.Benchfile.context campaign rows
        | None -> die "merge: unknown campaign %s" name);
        let metrics =
          Telemetry.Registry.merge
            (List.map
               (fun (p : Util.Benchfile.campaign) -> p.Util.Benchfile.metrics)
               parts)
        in
        if !mem_stats_enabled then print_mem_stats name metrics;
        Util.Benchfile.campaign ~context:c.Util.Benchfile.context ~name
          ~wall_s:
            (List.fold_left
               (fun acc (p : Util.Benchfile.campaign) ->
                 acc +. p.Util.Benchfile.wall_s)
               0.0 parts)
          metrics)
      first.Util.Benchfile.campaigns
  in
  Util.Benchfile.write !bench_out
    (Util.Benchfile.make ~shards:n ~merged_from:files
       ~pr:first.Util.Benchfile.pr ~jobs:first.Util.Benchfile.jobs
       ~compile_tier:first.Util.Benchfile.compile_tier merged)

(* ---- Bechamel micro-suite: one Test.make per table ----------------------- *)

let micro_tests () =
  let open Bechamel in
  let bench_once =
    (* fig5's unit of work: one benchmark under one deployment *)
    let bench = Option.get (Workload.Spec.find "gobmk") in
    Test.make ~name:"fig5: one SPEC run (compiler P-SSP)"
      (Staged.stage (fun () ->
           ignore
             (Harness.Runner.run_bench (Harness.Runner.Compiler Pssp.Scheme.Pssp)
                bench)))
  in
  let brop_trial =
    (* table1/effectiveness unit: one oracle query *)
    let image =
      Mcc.Driver.compile ~scheme:Pssp.Scheme.Pssp
        (Minic.Parser.parse (Workload.Vuln.fork_server ~buffer_size:16))
    in
    let oracle = Attack.Oracle.create ~preload:Os.Preload.Pssp_wide image in
    Test.make ~name:"table1: one byte-by-byte oracle query"
      (Staged.stage (fun () ->
           ignore (Attack.Oracle.query oracle (Bytes.make 17 'A'))))
  in
  let expansion =
    Test.make ~name:"table2: compile + instrument one binary"
      (Staged.stage (fun () ->
           let ssp =
             Mcc.Driver.compile ~scheme:Pssp.Scheme.Ssp
               (Minic.Parser.parse (Workload.Vuln.echo_once ~buffer_size:16))
           in
           ignore (Rewriter.Driver.instrument ssp)))
  in
  let request =
    let profile = Workload.Servers.nginx in
    let image =
      Mcc.Driver.compile ~scheme:Pssp.Scheme.Pssp
        (Minic.Parser.parse profile.Workload.Servers.source)
    in
    let kernel = Os.Kernel.create () in
    let server = Os.Kernel.spawn kernel ~preload:Os.Preload.Pssp_wide image in
    Os.Kernel.enqueue kernel server;
    Os.Kernel.schedule kernel;
    Test.make ~name:"table3/4: one served request (Nginx profile)"
      (Staged.stage (fun () ->
           Os.Kernel.deliver_request kernel server (Bytes.of_string "GET /");
           Os.Kernel.schedule kernel;
           Os.Kernel.reap_zombies kernel server;
           ignore (Os.Kernel.stop_of server)))
  in
  let prologue =
    Test.make ~name:"table5: 3k guarded calls (P-SSP-NT)"
      (Staged.stage (fun () ->
           ignore
             (Harness.Table5.measure_scheme ~calls:3000 Pssp.Scheme.Pssp_nt
                ~criticals:0)))
  in
  let rerandomize =
    let rng = Util.Prng.create 1L in
    Test.make ~name:"theorem1: one Re-Randomize (Algorithm 1)"
      (Staged.stage (fun () -> ignore (Pssp.Canary.re_randomize rng 0xFEEDL)))
  in
  [ bench_once; brop_trial; expansion; request; prologue; rerandomize ]

let run_micro () =
  let open Bechamel in
  section "Bechamel micro-benchmarks (host cost of each experiment's unit)";
  let benchmark test =
    let quota = Time.second 0.5 in
    Benchmark.all
      (Benchmark.cfg ~limit:200 ~quota ~kde:(Some 10) ())
      Toolkit.Instance.[ monotonic_clock ]
      test
  in
  let analyze results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock results
  in
  List.iter
    (fun test ->
      let results = benchmark test in
      let stats = analyze results in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-48s %12.0f ns/run\n" name est
          | _ -> Printf.printf "%-48s (no estimate)\n" name)
        stats)
    (micro_tests ())

(* ---- tier A/B: same workload, compiled tier forced off then on ----------- *)

let run_tierbench () =
  section
    "Tier A/B - interpreter vs closures vs chained/fused vs register caching";
  (* best-of-3 to shrug off GC and scheduler noise; the first run
     doubles as warm-up for the host *)
  let best_of_3 f =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      f ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  (* each timed cell also lands in the --bench-out record as its own
     campaign (one entry per tier), so the perf trajectory file carries
     the tier deltas alongside the campaign walls *)
  let time_tier ~workload tier f =
    Vm64.Compile.set_tier tier;
    Telemetry.Registry.reset_all ();
    let dt = best_of_3 f in
    record
      ~name:(Printf.sprintf "tierbench/%s@tier%d" workload tier)
      ~wall_s:dt
      (Telemetry.Registry.snapshot ());
    Vm64.Compile.set_tier 3;
    dt
  in
  (* gate 1 (PR 3): compiled execution beats the interpreter on the
     forking-server workload *)
  let profile = Workload.Servers.nginx in
  let requests = 2000 in
  let serve () =
    ignore
      (Harness.Runner.run_server (Harness.Runner.Compiler Pssp.Scheme.Pssp)
         profile ~requests)
  in
  let interp_s = time_tier ~workload:"nginx" 0 serve in
  let compiled_s = time_tier ~workload:"nginx" 3 serve in
  Printf.printf
    "TIERBENCH profile=%s requests=%d interp_s=%.3f compiled_s=%.3f speedup=%.2fx\n"
    profile.Workload.Servers.profile_name requests interp_s compiled_s
    (interp_s /. compiled_s);
  if compiled_s >= interp_s then begin
    Printf.eprintf
      "tierbench: compiled tier (%.3fs) is not faster than the interpreter \
       (%.3fs)\n"
      compiled_s interp_s;
    exit 1
  end;
  (* gate 2 (PR 7): chaining + superblocks beat the per-block closure
     tier on table5, serial (BENCH_pr3 baseline: 0.63s) *)
  let table5 () = ignore (Harness.Table5.run ~jobs:1 ()) in
  let tier1_s = time_tier ~workload:"table5" 1 table5 in
  let tier2_s = time_tier ~workload:"table5" 2 table5 in
  Printf.printf
    "TIERBENCH2 experiment=table5 jobs=1 tier1_s=%.3f tier2_s=%.3f speedup=%.2fx\n"
    tier1_s tier2_s (tier1_s /. tier2_s);
  if tier2_s >= tier1_s then begin
    Printf.eprintf
      "tierbench: chained tier (%.3fs) is not faster than per-block closures \
       (%.3fs)\n"
      tier2_s tier1_s;
    exit 1
  end;
  (* gate 3 (PR 8): register caching beats the plain chained tier on the
     same serial table5 workload *)
  let tier3_s = time_tier ~workload:"table5" 3 table5 in
  Printf.printf
    "TIERBENCH3 experiment=table5 jobs=1 tier2_s=%.3f tier3_s=%.3f speedup=%.2fx\n"
    tier2_s tier3_s (tier2_s /. tier3_s);
  if tier3_s >= tier2_s then begin
    Printf.eprintf
      "tierbench: register-caching tier (%.3fs) is not faster than the \
       chained tier (%.3fs)\n"
      tier3_s tier2_s;
    exit 1
  end

(* ---- zygote A/B: cold-boot vs snapshot-resume victim respawn ------------- *)

let run_zygotebench ~jobs () =
  section "Zygote A/B - cold-boot vs snapshot-resume victim respawn";
  let image =
    Mcc.Driver.compile ~scheme:Pssp.Scheme.Pssp
      (Minic.Parser.parse (Workload.Vuln.fork_server ~buffer_size:16))
  in
  (* gate (PR 9): thawing the warm snapshot beats re-running boot in an
     empty translation cache. The respawn loop is the unit an attack's
     restarts pay for; amplifying it isolates the cost from attack
     noise. *)
  let respawns = 500 in
  let time_respawns mode name =
    Telemetry.Registry.reset_all ();
    let oracle =
      Attack.Oracle.create ~preload:Os.Preload.Pssp_wide ~respawn:mode image
    in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to respawns do
      ignore (Attack.Oracle.restart_victim oracle)
    done;
    let dt = Unix.gettimeofday () -. t0 in
    record
      ~name:(Printf.sprintf "zygotebench/respawn@%s" name)
      ~wall_s:dt
      (Telemetry.Registry.snapshot ());
    dt
  in
  let cold_s = time_respawns Attack.Oracle.Cold "cold" in
  let zygote_s = time_respawns Attack.Oracle.Zygote "zygote" in
  Printf.printf
    "ZYGOTEBENCH respawns=%d cold_s=%.3f zygote_s=%.3f speedup=%.2fx\n" respawns
    cold_s zygote_s (cold_s /. zygote_s);
  if zygote_s >= cold_s then begin
    Printf.eprintf
      "zygotebench: zygote resume (%.3fs) is not faster than cold boot \
       (%.3fs)\n"
      zygote_s cold_s;
    exit 1
  end;
  (* the full effectiveness campaign under both respawn modes (same
     attack, bit-identical victims — only the restart path differs),
     recorded in the perf trajectory file *)
  let budget = Option.value !effectiveness_budget ~default:20_000 in
  let time_eff mode name =
    Telemetry.Registry.reset_all ();
    let t0 = Unix.gettimeofday () in
    ignore (Harness.Effectiveness.run ~jobs ~budget ~respawn:mode ());
    let dt = Unix.gettimeofday () -. t0 in
    record
      ~name:(Printf.sprintf "zygotebench/effectiveness@%s" name)
      ~wall_s:dt
      (Telemetry.Registry.snapshot ());
    dt
  in
  let eff_cold_s = time_eff Attack.Oracle.Cold "cold" in
  let eff_zygote_s = time_eff Attack.Oracle.Zygote "zygote" in
  Printf.printf
    "ZYGOTEBENCH2 experiment=effectiveness budget=%d jobs=%d cold_s=%.3f \
     zygote_s=%.3f speedup=%.2fx\n"
    budget jobs eff_cold_s eff_zygote_s (eff_cold_s /. eff_zygote_s)

let () =
  let jobs = ref 1 in
  let telem = Harness.Cli.telemetry_opts () in
  let specs =
    [
      Harness.Cli.nonneg_int ~name:"--jobs" ~docv:"N"
        ~doc:
          "fan the campaign workloads across N domains (default 1;\n\
           0 = recommended domain count). Output is byte-identical for any N."
        (fun j -> jobs := j);
      Harness.Cli.pos_int ~name:"--budget" ~docv:"N"
        ~doc:
          "trial budget per effectiveness cell (default 20000) /\n\
           requests per loadbench cell (default 512)"
        (fun b -> effectiveness_budget := Some b);
      Harness.Cli.pos_int ~name:"--shards" ~docv:"N"
        ~doc:
          "run each campaign as N in-process shard passes and merge\n\
           (default 1). Output is byte-identical for any N."
        (fun n -> shards := n);
      Harness.Cli.value ~name:"--shard" ~docv:"K/N"
        ~doc:
          "compute only shard K of N (0-based) and record its rows in\n\
           the --bench-out file for a later `merge`; prints nothing"
        (fun s ->
          match Scanf.sscanf_opt s "%d/%d%!" (fun k n -> (k, n)) with
          | Some (k, n) when n >= 1 && k >= 0 && k < n ->
            shard_spec := Some (k, n);
            Ok ()
          | _ ->
            Error
              (Harness.Cli.expects ~name:"--shard" ~what:"K/N with 0 <= K < N" s));
      Harness.Cli.value ~name:"--zygote" ~docv:"off|on|cold"
        ~doc:
          "effectiveness victim respawn at each attack restart: off\n\
           (default) keeps the long-lived parent, on thaws the zygote\n\
           snapshot captured at boot, cold boots afresh (on and cold are\n\
           observationally identical; only the restart cost differs)"
        (fun s ->
          match s with
          | "off" ->
            respawn := Attack.Oracle.No_respawn;
            Ok ()
          | "on" ->
            respawn := Attack.Oracle.Zygote;
            Ok ()
          | "cold" ->
            respawn := Attack.Oracle.Cold;
            Ok ()
          | _ ->
            Error (Harness.Cli.expects ~name:"--zygote" ~what:"off, on or cold" s));
      Harness.Cli.scheme_value ~name:"--scheme"
        ~doc:
          "narrow the effectiveness campaign to this protection scheme\n\
           (repeatable; default: the full target list). Rejects names\n\
           Pssp.Scheme.of_name does not know."
        (fun s -> schemes := !schemes @ [ s ]);
      Harness.Cli.pos_int ~name:"--connections" ~docv:"N"
        ~doc:"loadbench: concurrent client population (default 64)"
        (fun n -> load_connections := n);
      Harness.Cli.pos_int ~name:"--keepalive" ~docv:"N"
        ~doc:"loadbench: requests per connection before reconnecting (default 8)"
        (fun n -> load_keepalive := n);
      Harness.Cli.value ~name:"--loadgen" ~docv:"open|closed"
        ~doc:
          "loadbench population model: closed loop (default) or open\n\
           arrivals on a fixed interarrival clock"
        (fun s ->
          match s with
          | "closed" ->
            load_mode := Net.Loadgen.Closed;
            Ok ()
          | "open" ->
            load_mode := Net.Loadgen.Open { interarrival = 20_000L };
            Ok ()
          | _ -> Error (Harness.Cli.expects ~name:"--loadgen" ~what:"open or closed" s));
      Harness.Cli.value ~name:"--server-arch" ~docv:"fork|event|reuseport|all"
        ~doc:
          "loadbench server architecture: fork-per-connection, the\n\
           single-process epoll event loop, SO_REUSEPORT-style sharded\n\
           acceptors, or all three (default all)"
        (fun s ->
          match s with
          | "fork" ->
            load_archs := [ Harness.Loadbench.Fork ];
            Ok ()
          | "event" ->
            load_archs := [ Harness.Loadbench.Event ];
            Ok ()
          | "reuseport" ->
            load_archs := [ Harness.Loadbench.Reuseport ];
            Ok ()
          | "all" ->
            load_archs :=
              [
                Harness.Loadbench.Fork;
                Harness.Loadbench.Event;
                Harness.Loadbench.Reuseport;
              ];
            Ok ()
          | _ ->
            Error
              (Harness.Cli.expects ~name:"--server-arch"
                 ~what:"fork, event, reuseport or all" s));
      Harness.Cli.flag ~name:"--mem-stats"
        ~doc:
          "print a deterministic fork-path + translation-cache telemetry\n\
           line after each campaign. NOTE: the tcache counters depend on\n\
           the tier (compiles is 0 when off; chained execution bypasses\n\
           hit accounting), so tier A/B output diffs must not enable it."
        (fun () -> mem_stats_enabled := true);
      Harness.Cli.tier_value ~name:"--compile-tier"
        ~doc:
          "execution tier: off = interpreter, 1 = per-block closures,\n\
           2 = chained/fused superblocks, 3 = register caching\n\
           (default; on = 3). Campaign output is byte-identical for\n\
           every tier."
        Vm64.Compile.set_tier;
      Harness.Cli.string_value ~name:"--bench-out" ~docv:"FILE"
        ~doc:"where to write the perf trajectory record (default BENCH_pr10.json)"
        (fun f -> bench_out := f);
    ]
    @ Harness.Cli.telemetry_specs telem
  in
  let args =
    Harness.Cli.parse_or_exit ~prog:"bench/main.exe"
      ~positional:
        "[micro | tierbench | zygotebench | validate FILE... | merge FILE... \
         | <experiment>...]"
      specs
      (List.tl (Array.to_list Sys.argv))
  in
  if !shard_spec <> None && !shards <> 1 then begin
    Printf.eprintf "--shard and --shards are mutually exclusive\n";
    exit 1
  end;
  let jobs = if !jobs = 0 then Harness.Pool.default_jobs () else !jobs in
  let config =
    {
      Harness.Campaigns.budget = !effectiveness_budget;
      connections = !load_connections;
      keepalive = !load_keepalive;
      load_mode = !load_mode;
      load_archs = !load_archs;
      respawn = !respawn;
      schemes = !schemes;
    }
  in
  Harness.Cli.telemetry_start telem;
  (match args with
  | [ "micro" ] -> run_micro ()
  | [ "tierbench" ] -> run_tierbench ()
  | [ "zygotebench" ] -> run_zygotebench ~jobs ()
  | "validate" :: files -> run_validate files
  | "merge" :: files -> run_merge ~config files
  | [] ->
    if !shard_spec = None then
      print_string
        "P-SSP reproduction: regenerating every table and figure of the paper\n";
    List.iter (run_campaign ~jobs) (Harness.Campaigns.all config)
  | names ->
    let campaigns = Harness.Campaigns.all config in
    List.iter
      (fun name ->
        match
          List.find_opt
            (fun (c : Harness.Campaign.t) ->
              String.equal c.Harness.Campaign.name name)
            campaigns
        with
        | Some c -> run_campaign ~jobs c
        | None ->
          Printf.eprintf "unknown experiment %s (have: %s, micro, tierbench)\n"
            name
            (String.concat " " (Harness.Campaigns.names config));
          exit 1)
      names);
  (* merge writes its own combined record *)
  (match args with "merge" :: _ -> () | _ -> write_bench_json ~jobs);
  Harness.Cli.telemetry_finish telem
